"""Tests for the direct-mapped MESI cache (single-cache behaviour)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import Cache, EXCLUSIVE, INVALID, MODIFIED, SHARED


def make_cache(size=256, line=16):
    return Cache(size=size, line_size=line)


class TestGeometry:
    def test_line_and_index(self):
        c = make_cache(size=256, line=16)  # 16 lines
        assert c.line_of(0) == 0
        assert c.line_of(15) == 0
        assert c.line_of(16) == 1
        assert c.index_of(c.line_of(16 * 16)) == 0  # wraps

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            Cache(size=100, line_size=16)

    def test_non_power_of_two_lines_rejected(self):
        with pytest.raises(ValueError):
            Cache(size=48, line_size=16)


class TestStates:
    def test_initially_invalid(self):
        c = make_cache()
        assert c.state_of(0x40) == INVALID
        assert not c.holds(0x40)

    def test_install_shared(self):
        c = make_cache()
        c.install(0x40, SHARED)
        assert c.state_of(0x40) == SHARED
        assert c.state_of(0x44) == SHARED  # same line

    def test_install_conflicting_line_evicts(self):
        c = make_cache(size=256)  # 16 lines; 0x0 and 0x100 conflict
        c.install(0x0, SHARED)
        victim = c.install(0x100, SHARED)
        assert victim is None  # clean victim: no writeback
        assert c.state_of(0x0) == INVALID
        assert c.stats.evictions == 1

    def test_dirty_eviction_writes_back(self):
        c = make_cache(size=256)
        c.install(0x0, MODIFIED)
        victim = c.install(0x100, SHARED)
        assert victim == 0  # line address of the dirty victim
        assert c.stats.writebacks == 1

    def test_set_state_requires_presence(self):
        c = make_cache()
        with pytest.raises(ValueError):
            c.set_state(0x40, MODIFIED)

    def test_invalidate(self):
        c = make_cache()
        c.install(0x40, SHARED)
        assert c.invalidate(0x40)
        assert c.state_of(0x40) == INVALID
        assert c.stats.invalidations_received == 1

    def test_invalidate_absent_line_is_noop(self):
        c = make_cache()
        assert not c.invalidate(0x40)
        assert c.stats.invalidations_received == 0

    def test_downgrade_modified_writes_back(self):
        c = make_cache()
        c.install(0x40, MODIFIED)
        assert c.downgrade(0x40) is True
        assert c.state_of(0x40) == SHARED
        assert c.stats.writebacks == 1

    def test_downgrade_exclusive_is_silent(self):
        c = make_cache()
        c.install(0x40, EXCLUSIVE)
        assert c.downgrade(0x40) is False
        assert c.state_of(0x40) == SHARED
        assert c.stats.writebacks == 0

    def test_downgrade_shared_is_noop(self):
        c = make_cache()
        c.install(0x40, SHARED)
        assert c.downgrade(0x40) is False
        assert c.state_of(0x40) == SHARED


@settings(max_examples=200, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 1023), st.sampled_from([SHARED, EXCLUSIVE,
                                                     MODIFIED])),
    max_size=50,
))
def test_property_state_always_matches_last_install(ops):
    """After any install sequence, a line is either absent or in the last
    state installed for the line currently occupying its set."""
    c = make_cache(size=256)
    last_for_index = {}
    for addr, state in ops:
        c.install(addr, state)
        last_for_index[c.index_of(c.line_of(addr))] = (c.line_of(addr),
                                                       state)
    for index, (line, state) in last_for_index.items():
        addr = line * c.line_size
        assert c.state_of(addr) == state


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 2047), min_size=1, max_size=100))
def test_property_writeback_only_on_dirty_eviction(addrs):
    """Writebacks never exceed the number of MODIFIED installs."""
    c = make_cache(size=256)
    modified_installs = 0
    for i, addr in enumerate(addrs):
        state = MODIFIED if i % 2 else SHARED
        if state == MODIFIED:
            modified_installs += 1
        c.install(addr, state)
    assert c.stats.writebacks <= modified_installs
