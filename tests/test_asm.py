"""Tests for the structured assembler, executed through the interpreter."""

import pytest

from repro.asm import AsmBuilder, Reg, RegisterPressureError
from repro.isa import NUM_INT_REGS, Op
from repro.mem import SharedMemory
from repro.tango import ThreadState, execute_instruction
from exec_helpers import run_program




class TestRegisterAllocation:
    def test_regs_are_reg_type(self):
        b = AsmBuilder()
        assert isinstance(b.ireg(), Reg)
        assert isinstance(b.freg(), Reg)
        assert isinstance(b.zero, Reg)

    def test_exhaustion_raises(self):
        b = AsmBuilder()
        for _ in range(30):  # r0 and r31 are reserved
            b.ireg()
        with pytest.raises(RegisterPressureError):
            b.ireg()

    def test_free_recycles(self):
        b = AsmBuilder()
        regs = [b.ireg() for _ in range(30)]
        b.free(*regs)
        again = [b.ireg() for _ in range(30)]
        assert sorted(again) == sorted(regs)

    def test_itemps_scope(self):
        b = AsmBuilder()
        with b.itemps(3) as (x, y, z):
            assert len({x, y, z}) == 3
        with b.itemps(1) as t:
            assert t in (x, y, z)

    def test_fp_regs_distinct_namespace(self):
        b = AsmBuilder()
        f = b.freg()
        assert f >= 32

    def test_zero_and_ra_not_allocatable(self):
        b = AsmBuilder()
        allocated = [b.ireg() for _ in range(30)]
        assert 0 not in allocated
        assert 31 not in allocated


class TestArithmeticHelpers:
    def test_li_and_add(self):
        b = AsmBuilder()
        x = b.ireg()
        y = b.ireg()
        b.li(x, 7)
        b.li(y, 35)
        b.add(x, x, y)
        state = run_program(b)
        assert state.regs[x] == 42

    def test_mov(self):
        b = AsmBuilder()
        x, y = b.ireg(), b.ireg()
        b.li(x, 9)
        b.mov(y, x)
        state = run_program(b)
        assert state.regs[y] == 9

    def test_fli(self):
        b = AsmBuilder()
        f = b.freg()
        b.fli(f, 0.25)
        state = run_program(b)
        assert state.regs[f] == 0.25

    def test_memory_roundtrip(self):
        b = AsmBuilder()
        addr, val = b.ireg(), b.ireg()
        b.li(addr, 0x1000)
        b.li(val, 123)
        b.sw(val, addr, 4)
        b.lw(val, addr, 4)
        state = run_program(b)
        assert state.regs[val] == 123

    def test_fp_memory_roundtrip(self):
        b = AsmBuilder()
        addr = b.ireg()
        f = b.freg()
        b.li(addr, 0x2000)
        b.fli(f, 3.5)
        b.fsd(f, addr, 8)
        g = b.freg()
        b.fld(g, addr, 8)
        state = run_program(b)
        assert state.regs[g] == 3.5


class TestControlFlow:
    def test_for_range_constant_bounds(self):
        b = AsmBuilder()
        acc, i = b.ireg(), b.ireg()
        b.li(acc, 0)
        with b.for_range(i, 0, 10):
            b.add(acc, acc, i)
        state = run_program(b)
        assert state.regs[acc] == sum(range(10))

    def test_for_range_register_stop(self):
        b = AsmBuilder()
        acc, i, n = b.ireg(), b.ireg(), b.ireg()
        b.li(acc, 0)
        b.li(n, 7)
        with b.for_range(i, 0, n):
            b.addi(acc, acc, 1)
        state = run_program(b)
        assert state.regs[acc] == 7

    def test_for_range_register_start(self):
        b = AsmBuilder()
        acc, i, s = b.ireg(), b.ireg(), b.ireg()
        b.li(acc, 0)
        b.li(s, 3)
        with b.for_range(i, s, 6):
            b.addi(acc, acc, 1)
        state = run_program(b)
        assert state.regs[acc] == 3

    def test_for_range_negative_step(self):
        b = AsmBuilder()
        acc, i = b.ireg(), b.ireg()
        b.li(acc, 0)
        with b.for_range(i, 5, 0, step=-1):
            b.add(acc, acc, i)
        state = run_program(b)
        assert state.regs[acc] == 5 + 4 + 3 + 2 + 1

    def test_for_range_step_multiple(self):
        b = AsmBuilder()
        acc, i = b.ireg(), b.ireg()
        b.li(acc, 0)
        with b.for_range(i, 0, 10, step=3):
            b.addi(acc, acc, 1)
        state = run_program(b)
        assert state.regs[acc] == 4  # 0, 3, 6, 9

    def test_for_range_zero_step_rejected(self):
        b = AsmBuilder()
        i = b.ireg()
        with pytest.raises(ValueError):
            with b.for_range(i, 0, 10, step=0):
                pass

    def test_empty_for_range(self):
        b = AsmBuilder()
        acc, i = b.ireg(), b.ireg()
        b.li(acc, 0)
        with b.for_range(i, 5, 5):
            b.addi(acc, acc, 1)
        state = run_program(b)
        assert state.regs[acc] == 0

    def test_if_cmp_true(self):
        b = AsmBuilder()
        x, y = b.ireg(), b.ireg()
        b.li(x, 1)
        b.li(y, 0)
        with b.if_cmp("gt", x, b.zero):
            b.li(y, 42)
        state = run_program(b)
        assert state.regs[y] == 42

    def test_if_cmp_false(self):
        b = AsmBuilder()
        x, y = b.ireg(), b.ireg()
        b.li(x, -1)
        b.li(y, 7)
        with b.if_cmp("gt", x, b.zero):
            b.li(y, 42)
        state = run_program(b)
        assert state.regs[y] == 7

    def test_while_cmp(self):
        b = AsmBuilder()
        x, n = b.ireg(), b.ireg()
        b.li(x, 0)
        b.li(n, 12)
        with b.while_cmp("lt", x, n):
            b.addi(x, x, 5)
        state = run_program(b)
        assert state.regs[x] == 15

    def test_nested_loops(self):
        b = AsmBuilder()
        acc, i, j = b.ireg(), b.ireg(), b.ireg()
        b.li(acc, 0)
        with b.for_range(i, 0, 4):
            with b.for_range(j, 0, 3):
                b.addi(acc, acc, 1)
        state = run_program(b)
        assert state.regs[acc] == 12

    def test_jal_jr_subroutine(self):
        b = AsmBuilder()
        x = b.ireg()
        b.li(x, 0)
        b.jal("sub")
        b.jal("sub")
        b.j("end")
        b.label("sub")
        b.addi(x, x, 10)
        b.jr()
        b.label("end")
        state = run_program(b)
        assert state.regs[x] == 20

    def test_branch_cc_table(self):
        for cc, a, c, taken in [
            ("eq", 3, 3, True), ("eq", 3, 4, False),
            ("ne", 3, 4, True), ("ne", 3, 3, False),
            ("lt", 2, 3, True), ("lt", 3, 3, False),
            ("ge", 3, 3, True), ("ge", 2, 3, False),
            ("le", 3, 3, True), ("le", 4, 3, False),
            ("gt", 4, 3, True), ("gt", 3, 3, False),
        ]:
            b = AsmBuilder()
            x, y, out = b.ireg(), b.ireg(), b.ireg()
            b.li(x, a)
            b.li(y, c)
            b.li(out, 0)
            b.branch(cc, x, y, "yes")
            b.j("end")
            b.label("yes")
            b.li(out, 1)
            b.label("end")
            state = run_program(b)
            assert state.regs[out] == (1 if taken else 0), (cc, a, c)
