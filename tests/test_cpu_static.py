"""Tests for BASE, SSBR and SS on hand-crafted traces."""

from repro.consistency import PC, RC, SC
from repro.cpu import simulate_base, simulate_ss, simulate_ssbr

from trace_helpers import TraceBuilder, alu_block


class TestBase:
    def test_pure_compute(self):
        tb = TraceBuilder()
        alu_block(tb, 10)
        r = simulate_base(tb.build())
        assert r.total == 10
        assert r.busy == 10 and r.read == 0

    def test_read_miss_charged_to_read(self):
        tb = TraceBuilder()
        tb.load(stall=50)
        r = simulate_base(tb.build())
        assert r.total == 51 and r.read == 50

    def test_write_and_release_charged_to_write(self):
        tb = TraceBuilder()
        tb.store(stall=50)
        tb.release(stall=50)
        r = simulate_base(tb.build())
        assert r.write == 100 and r.busy == 2

    def test_acquire_charged_to_sync_with_wait(self):
        tb = TraceBuilder()
        tb.acquire(stall=50, wait=200)
        r = simulate_base(tb.build())
        assert r.sync == 250 and r.total == 251

    def test_components_sum_to_total(self):
        tb = TraceBuilder()
        tb.load(stall=50)
        tb.store(stall=50)
        tb.acquire(stall=50, wait=10)
        tb.barrier(stall=50, wait=30)
        alu_block(tb, 5)
        r = simulate_base(tb.build())
        assert r.total == r.busy + r.sync + r.read + r.write + r.other


class TestSSBR:
    def test_sc_blocks_on_everything(self):
        tb = TraceBuilder()
        tb.store(stall=50, addr=0x100)
        tb.load(stall=50, addr=0x200)
        r = simulate_ssbr(tb.build(), SC)
        # The read must wait for the buffered write to drain; SC-SSBR
        # matches BASE up to the single cycle of issue/buffer overlap.
        base_total = simulate_base(tb.build()).total
        assert base_total - 2 <= r.total <= base_total

    def test_pc_read_bypasses_pending_write(self):
        tb = TraceBuilder()
        tb.store(stall=50, addr=0x100)
        tb.load(stall=50, addr=0x200)
        alu_block(tb, 5)
        r = simulate_ssbr(tb.build(), PC)
        # Write is buffered (hidden); only the read stall remains.
        assert r.write == 0
        assert r.read == 50
        assert r.total == 7 + 50

    def test_pc_serialized_writes_fill_buffer(self):
        tb = TraceBuilder()
        for i in range(40):  # 40 write misses back to back, depth 16
            tb.store(stall=50, addr=0x1000 + i * 64)
        r = simulate_ssbr(tb.build(), PC)
        assert r.write > 0  # buffer-full stalls appear

    def test_rc_overlapped_writes_do_not_fill_buffer(self):
        tb = TraceBuilder()
        for i in range(40):
            tb.store(stall=50, addr=0x1000 + i * 64)
        rc = simulate_ssbr(tb.build(), RC)
        pc = simulate_ssbr(tb.build(), PC)
        assert rc.write < pc.write
        assert rc.total < pc.total

    def test_store_forwarding_avoids_read_stall(self):
        tb = TraceBuilder()
        tb.store(stall=50, addr=0x100)
        tb.load(stall=50, addr=0x100)  # same address: forwarded
        r = simulate_ssbr(tb.build(), PC)
        assert r.read == 0

    def test_barrier_drains_write_buffer(self):
        tb = TraceBuilder()
        tb.store(stall=50, addr=0x100)
        tb.barrier(stall=50, wait=0)
        r = simulate_ssbr(tb.build(), RC)
        # the barrier cannot complete before the write performed
        assert r.write > 0
        assert r.sync == 50

    def test_busy_equals_instructions(self):
        tb = TraceBuilder()
        alu_block(tb, 3)
        tb.load(stall=50)
        tb.store(stall=50)
        for model in (SC, PC, RC):
            r = simulate_ssbr(tb.build(), model)
            assert r.busy == 5

    def test_attribution_sums(self):
        tb = TraceBuilder()
        for i in range(10):
            tb.store(stall=50, addr=0x1000 + i * 16)
            tb.load(stall=50, addr=0x2000 + i * 16)
            tb.acquire(stall=50, wait=5)
            tb.release(stall=50)
            alu_block(tb, 3)
        for model in (SC, PC, RC):
            r = simulate_ssbr(tb.build(), model)
            assert r.total == r.busy + r.sync + r.read + r.write + r.other


class TestSS:
    def test_stall_deferred_to_use(self):
        tb = TraceBuilder()
        tb.load(rd=5, stall=50)
        alu_block(tb, 20)         # independent work
        tb.alu(rd=6, rs1=5)       # first use
        r = simulate_ss(tb.build(), RC)
        # 20 of the 50 stall cycles are overlapped with the alu block.
        assert r.read < 50
        assert r.read >= 50 - 21 - 1

    def test_no_use_no_stall(self):
        tb = TraceBuilder()
        tb.load(rd=5, stall=50)
        alu_block(tb, 60)
        r = simulate_ss(tb.build(), RC)
        assert r.read == 0

    def test_immediate_use_equals_blocking(self):
        tb = TraceBuilder()
        tb.load(rd=5, stall=50)
        tb.alu(rd=6, rs1=5)
        ss = simulate_ss(tb.build(), RC)
        ssbr = simulate_ssbr(tb.build(), RC)
        assert abs(ss.total - ssbr.total) <= 1

    def test_pc_serializes_reads(self):
        tb = TraceBuilder()
        tb.load(rd=5, stall=50, addr=0x100)
        tb.load(rd=6, stall=50, addr=0x200)
        tb.alu(rd=7, rs1=5, rs2=6)
        pc = simulate_ss(tb.build(), PC)
        rc = simulate_ss(tb.build(), RC)
        # Under RC the two misses overlap; under PC they serialize.
        assert rc.total < pc.total

    def test_read_buffer_limits_outstanding_reads(self):
        tb = TraceBuilder()
        for i in range(40):
            tb.load(rd=-1, stall=50, addr=0x1000 + 64 * i)
        limited = simulate_ss(tb.build(), RC, read_buffer_depth=2)
        wide = simulate_ss(tb.build(), RC, read_buffer_depth=64)
        assert limited.total > wide.total

    def test_attribution_sums(self):
        tb = TraceBuilder()
        for i in range(10):
            tb.load(rd=5, stall=50, addr=0x1000 + i * 16)
            tb.alu(rd=6, rs1=5)
            tb.store(rs2=6, stall=50, addr=0x2000 + i * 16)
            tb.barrier(stall=50, wait=7)
        for model in (SC, PC, RC):
            r = simulate_ss(tb.build(), model)
            assert r.total == r.busy + r.sync + r.read + r.write + r.other

    def test_ss_never_slower_than_ssbr(self):
        tb = TraceBuilder()
        for i in range(15):
            tb.load(rd=5, stall=50, addr=0x1000 + i * 16)
            alu_block(tb, 4)
            tb.alu(rd=6, rs1=5)
        for model in (SC, PC, RC):
            ss = simulate_ss(tb.build(), model)
            ssbr = simulate_ssbr(tb.build(), model)
            assert ss.total <= ssbr.total + 1
