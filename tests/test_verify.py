"""Tests for the memory-consistency verification subsystem.

Covers the three layers end to end: the execution recorder (event
capture, reads-from derivation, barrier episodes, the coherence SWMR
audit), the axiomatic checker (synthetic consistent and cyclic logs,
value and cross-location rf violations, barrier fusion), the model-aware
relaxed engine (SC soundness, store-to-load forwarding, deadlock and
runaway detection), and the litmus/app harnesses behind
``python -m repro verify``.
"""

import pytest

from repro.asm import AsmBuilder
from repro.isa import MemClass, Op
from repro.mem.cache import MODIFIED, SHARED
from repro.verify import (
    ALL_MODELS,
    CATALOG,
    ExecutionRecorder,
    RelaxedEngine,
    RelaxedExecutionError,
    check_execution,
    format_litmus_report,
    run_litmus,
    tango_crosscheck,
    verify_app,
    verify_litmus,
)
from repro.verify.recorder import RecorderError

R = int(MemClass.READ)
W = int(MemClass.WRITE)
BAR = int(MemClass.BARRIER)
LW = int(Op.LW)
SW = int(Op.SW)
BARRIER = int(Op.BARRIER)

X, Y = 0x1000, 0x1040


class TestRecorder:
    def test_bind_rejects_different_width(self):
        rec = ExecutionRecorder()
        rec.bind(4)
        rec.bind(4)  # idempotent
        with pytest.raises(RecorderError):
            rec.bind(8)

    def test_program_order_and_gid_assignment(self):
        rec = ExecutionRecorder()
        rec.bind(2)
        a = rec.record(0, 0, SW, W, X, value=1)
        b = rec.record(1, 0, SW, W, Y, value=2)
        c = rec.record(0, 1, LW, R, Y, value=2)
        assert (a.gid, b.gid, c.gid) == (0, 1, 2)
        assert (a.po, b.po, c.po) == (0, 0, 1)
        assert [e.completed for e in (a, b, c)] == [0, 1, 2]

    def test_reads_from_tracks_last_completed_write(self):
        rec = ExecutionRecorder()
        rec.bind(2)
        w1 = rec.record(0, 0, SW, W, X, value=1)
        w2 = rec.record(1, 0, SW, W, X, value=2)
        r = rec.record(0, 1, LW, R, X, value=2)
        assert r.rf == w2.gid != w1.gid

    def test_initial_read_has_no_writer(self):
        rec = ExecutionRecorder()
        rec.bind(1)
        r = rec.record(0, 0, LW, R, X, value=0)
        assert r.rf == -1

    def test_words_and_doubles_are_distinct_locations(self):
        rec = ExecutionRecorder()
        rec.bind(1)
        rec.record(0, 0, int(Op.FSD), W, X, value=1.5, wide=True)
        r = rec.record(0, 1, LW, R, X, value=0)
        assert r.rf == -1  # the double write is a different key

    def test_barrier_episodes_group_by_generation(self):
        rec = ExecutionRecorder()
        rec.bind(2)
        eps = [
            rec.record(tid, 0, BARRIER, BAR, 0x30)
            for tid in (0, 1)
        ] + [
            rec.record(tid, 1, BARRIER, BAR, 0x30)
            for tid in (1, 0)
        ]
        assert [e.episode for e in eps] == [0, 0, 1, 1]

    def test_swmr_audit_flags_two_owners(self):
        rec = ExecutionRecorder()
        rec.bind(2)
        rec.coherence_event("install", 0, 0x100, MODIFIED)
        rec.coherence_event("install", 1, 0x100, SHARED)
        assert rec.audit_violations
        assert "SWMR" in rec.audit_violations[0]

    def test_invalidate_then_install_is_clean(self):
        rec = ExecutionRecorder()
        rec.bind(2)
        rec.coherence_event("install", 0, 0x100, MODIFIED)
        rec.coherence_event("invalidate", 0, 0x100, True)
        rec.coherence_event("install", 1, 0x100, MODIFIED)
        assert rec.audit_violations == []


def _sb_log(complete_writes_last: bool):
    """Build an SB log; delayed write completion makes it non-SC."""
    rec = ExecutionRecorder()
    rec.bind(2)
    if complete_writes_last:
        wx = rec.begin(0, 0, SW, W, X, value=1)
        rec.record(0, 1, LW, R, Y, value=0)
        wy = rec.begin(1, 0, SW, W, Y, value=1)
        rec.record(1, 1, LW, R, X, value=0)
        rec.complete(wx)
        rec.complete(wy)
    else:
        rec.record(0, 0, SW, W, X, value=1)
        rec.record(0, 1, LW, R, Y, value=0)
        rec.record(1, 0, SW, W, Y, value=1)
        rec.record(1, 1, LW, R, X, value=1)
    return rec.log()


class TestChecker:
    def test_interleaved_sb_is_sequentially_consistent(self):
        log = _sb_log(complete_writes_last=False)
        for model in ALL_MODELS:
            assert check_execution(log, model).ok

    def test_buffered_sb_cycles_under_sc_only(self):
        log = _sb_log(complete_writes_last=True)
        result = check_execution(log, "SC")
        assert not result.ok
        (violation,) = result.violations
        assert violation.kind == "cycle"
        labels = {label for _, label in violation.cycle}
        assert "po[SC]" in labels and "fr-init" in labels
        for model in ("PC", "WO", "RC"):
            assert check_execution(log, model).ok

    def test_cycle_report_names_events(self):
        result = check_execution(_sb_log(True), "SC")
        text = result.violations[0].format()
        assert "SW" in text and "LW" in text and "pc=" in text
        assert "... back to" in text

    def test_value_mismatch_reported(self):
        rec = ExecutionRecorder()
        rec.bind(1)
        rec.record(0, 0, SW, W, X, value=5)
        rec.record(0, 1, LW, R, X, value=7)
        result = check_execution(rec.log(), "SC")
        assert any(v.kind == "value" for v in result.violations)

    def test_rf_across_locations_reported(self):
        rec = ExecutionRecorder()
        rec.bind(1)
        w = rec.record(0, 0, SW, W, X, value=5)
        rec.record(0, 1, LW, R, Y, value=5, rf_event=w)
        result = check_execution(rec.log(), "SC")
        assert any(
            v.kind == "value" and "crosses locations" in v.message
            for v in result.violations
        )

    def test_stale_read_after_barrier_cycles_under_every_model(self):
        rec = ExecutionRecorder()
        rec.bind(2)
        rec.record(0, 0, SW, W, X, value=1)
        rec.record(0, 1, BARRIER, BAR, 0x30)
        rec.record(1, 0, BARRIER, BAR, 0x30)
        rec.record(1, 1, LW, R, X, value=0, rf_event=None)
        for model in ALL_MODELS:  # barriers order under RC too
            result = check_execution(rec.log(), model)
            assert not result.ok
            (violation,) = result.violations
            descs = [d for d, _ in violation.cycle]
            assert "barrier-episode" in descs

    def test_coherence_audit_becomes_violation(self):
        rec = ExecutionRecorder()
        rec.bind(2)
        rec.coherence_event("install", 0, 0x100, MODIFIED)
        rec.coherence_event("install", 1, 0x100, MODIFIED)
        result = check_execution(rec.log(), "SC")
        assert any(
            v.kind == "coherence-audit" for v in result.violations
        )

    def test_empty_log_is_consistent(self):
        rec = ExecutionRecorder()
        rec.bind(1)
        assert check_execution(rec.log(), "SC").ok


class TestRelaxedEngine:
    def test_sc_never_shows_store_buffering(self):
        test = CATALOG["sb"]
        for seed in range(100):
            programs, observers = test.build()
            engine = RelaxedEngine(programs, model="SC", seed=seed)
            log = engine.run()
            r0 = engine.states[0].regs[observers[0][2]]
            r1 = engine.states[1].regs[observers[1][2]]
            assert (r0, r1) != (0, 0)
            assert check_execution(log, "SC").ok

    def test_every_model_accepts_its_own_executions(self):
        for model in ALL_MODELS:
            for seed in range(25):
                programs, _ = CATALOG["mp"].build()
                engine = RelaxedEngine(programs, model=model, seed=seed)
                log = engine.run()
                assert check_execution(log, model).ok, (model, seed)

    @staticmethod
    def _forwarding_program():
        b = AsmBuilder("fwd")
        a = b.ireg("a")
        v = b.ireg("v")
        r = b.ireg("r")
        b.la(a, X)
        b.li(v, 7)
        b.sw(v, a)
        b.lw(r, a)
        b.halt()
        return [b.build()], int(r)

    def test_store_to_load_forwarding(self):
        saw_forward = saw_drained = False
        for seed in range(40):
            programs, r = self._forwarding_program()
            engine = RelaxedEngine(programs, model="PC", seed=seed)
            log = engine.run()
            assert engine.states[0].regs[r] == 7
            store, load = (
                e for e in log.events if e.cls in (W, R)
            )
            assert load.rf == store.gid  # forwarded or via memory
            if load.completed < store.completed:
                saw_forward = True  # read performed under the buffered store
            else:
                saw_drained = True
        assert saw_forward and saw_drained

    def test_blocked_sync_deadlock_raises(self):
        b = AsmBuilder("stuck")
        a = b.ireg("a")
        b.la(a, 0x40)
        b.evwait(a)
        b.halt()
        engine = RelaxedEngine([b.build()], model="SC", seed=0)
        with pytest.raises(RelaxedExecutionError, match="deadlock"):
            engine.run()

    def test_runaway_execution_raises(self):
        b = AsmBuilder("spin")
        top = b.label(b.newlabel("top"))
        b.j(top)
        b.halt()
        engine = RelaxedEngine(
            [b.build()], model="SC", seed=0, max_steps=500
        )
        with pytest.raises(RelaxedExecutionError, match="exceeded"):
            engine.run()

    def test_locks_serialize_increments_under_rc(self):
        programs, observers = CATALOG["inc"].build()
        for seed in range(10):
            programs, observers = CATALOG["inc"].build()
            engine = RelaxedEngine(programs, model="RC", seed=seed)
            log = engine.run()
            addr = observers[0][1]
            assert engine.memory.read_word(addr) == len(programs)
            assert check_execution(log, "RC").ok


class TestLitmusHarness:
    def test_sb_clean_under_sc(self):
        result = run_litmus("sb", "SC", schedules=60, seed=0)
        assert result.ok
        assert (0, 0) not in result.outcomes
        assert result.demo_cycle is None

    def test_sb_demo_cycle_under_pc(self):
        result = run_litmus("sb", "PC", schedules=60, seed=0)
        assert result.ok
        assert (0, 0) in result.outcomes
        assert result.demo_cycle is not None
        assert "fr-init" in result.demo_cycle

    def test_mp_relaxed_outcome_under_wo(self):
        result = run_litmus("mp", "WO", schedules=100, seed=0)
        assert result.ok
        assert (0,) in result.outcomes

    def test_forbidden_outcome_is_flagged(self):
        # Annotate an outcome that *does* occur as forbidden: the
        # harness must catch it (guards the detection machinery).
        from dataclasses import replace

        bad = replace(
            CATALOG["mp"],
            forbidden={"WO": frozenset({(0,), (42,)})},
        )
        result = run_litmus(bad, "WO", schedules=50, seed=0)
        assert not result.ok
        assert any("forbidden" in v for v in result.violations)

    def test_missing_expected_outcome_is_flagged(self):
        from dataclasses import replace

        bad = replace(
            CATALOG["sb"], expect_observed={"SC": (0, 0)}
        )
        result = run_litmus(bad, "SC", schedules=60, seed=0)
        assert any("never appeared" in v for v in result.violations)

    def test_few_schedules_do_not_demand_expected_outcome(self):
        from dataclasses import replace

        lenient = replace(
            CATALOG["sb"], expect_observed={"SC": (0, 0)}
        )
        result = run_litmus(lenient, "SC", schedules=5, seed=0)
        assert result.ok  # below MIN_SCHEDULES_FOR_EXPECT

    def test_catalog_subset_report(self):
        results = verify_litmus(
            names=("sb",), models=("SC", "PC"), schedules=60, seed=0
        )
        assert all(r.ok for r in results)
        report = format_litmus_report(results)
        assert "[sb/SC] ok" in report and "[sb/PC] ok" in report
        assert "provably non-SC" in report

    def test_parallel_jobs_match_serial(self):
        serial = verify_litmus(
            names=("sb", "inc"), models=("SC",), schedules=20, seed=3
        )
        parallel = verify_litmus(
            names=("sb", "inc"), models=("SC",), schedules=20, seed=3,
            jobs=2,
        )
        assert [(r.test, r.model, r.outcomes, r.violations)
                for r in serial] == \
               [(r.test, r.model, r.outcomes, r.violations)
                for r in parallel]


class TestAppHarness:
    def test_lu_verifies_under_every_model(self):
        result = verify_app("lu", n_procs=4)
        assert result.ok
        assert result.functional_ok
        assert result.n_events > 0
        assert result.n_coherence_events > 0
        assert set(result.checks) == set(ALL_MODELS)
        assert "ok" in result.format()

    def test_tango_crosscheck_accepts_all_models(self):
        checks = tango_crosscheck("mp")
        assert set(checks) == set(ALL_MODELS)
        assert all(c.ok for c in checks.values())


class TestOOOIssue:
    """Out-of-order issue mode: the decode window over loads/stores."""

    def test_lb_reordering_appears_under_rc_never_under_sc(self):
        relaxed = run_litmus("lb", "RC", schedules=150, seed=0, ooo=True)
        assert relaxed.ok
        assert (1, 1) in relaxed.outcomes
        assert relaxed.demo_cycle is not None  # provably non-SC
        strict = run_litmus("lb", "SC", schedules=150, seed=0, ooo=True)
        assert strict.ok
        assert (1, 1) not in strict.outcomes

    def test_iriw_reordering_appears_under_rc_never_under_sc(self):
        relaxed = run_litmus(
            "iriw", "RC", schedules=400, seed=0, ooo=True
        )
        assert relaxed.ok
        assert (1, 0, 1, 0) in relaxed.outcomes
        assert relaxed.demo_cycle is not None
        strict = run_litmus(
            "iriw", "SC", schedules=400, seed=0, ooo=True
        )
        assert strict.ok
        assert (1, 0, 1, 0) not in strict.outcomes

    def test_pc_keeps_load_order_with_ooo(self):
        for test, forbidden in (("lb", (1, 1)), ("iriw", (1, 0, 1, 0))):
            result = run_litmus(test, "PC", schedules=150, seed=0,
                                ooo=True)
            assert result.ok
            assert forbidden not in result.outcomes

    def test_checker_accepts_every_ooo_execution(self):
        # Violations would include checker rejections; the full catalog
        # must stay clean under OOO issue for every model.
        for result in verify_litmus(schedules=40, seed=5, ooo=True):
            assert result.ok, result.format()

    def test_register_dependence_blocks_reordering(self):
        # A load feeding a dependent store's address must issue first:
        # the window stops decoding at the RAW, so the pair can never
        # produce a value the in-order engine could not.
        b0 = AsmBuilder("dep_w")
        a = b0.ireg("a")
        v = b0.ireg("v")
        b0.la(a, X)
        b0.li(v, 0x2000)
        b0.sw(v, a)
        b0.halt()
        b1 = AsmBuilder("dep_r")
        a = b1.ireg("a")
        p = b1.ireg("p")
        one = b1.ireg("one")
        b1.la(a, X)
        b1.li(one, 1)
        b1.lw(p, a)          # p = mem[X] (0 or 0x2000)
        skip = b1.newlabel("skip")
        b1.beqz(p, skip)
        b1.sw(one, p)        # store through the loaded pointer
        b1.label(skip)
        b1.halt()
        from repro.mem import SharedMemory

        for seed in range(60):
            memory = SharedMemory()
            engine = RelaxedEngine(
                [b0.build(), b1.build()], memory=memory, model="RC",
                seed=seed, ooo=True,
            )
            engine.run()  # would fault on a bogus address if reordered

    def test_store_forwarding_still_works_with_ooo(self):
        b = AsmBuilder("fwd")
        a = b.ireg("a")
        v = b.ireg("v")
        r = b.ireg("r")
        b.la(a, X)
        b.li(v, 7)
        b.sw(v, a)
        b.lw(r, a)  # same address: must wait for (and see) the store
        b.halt()
        for seed in range(40):
            engine = RelaxedEngine([b.build()], model="RC", seed=seed,
                                   ooo=True)
            log = engine.run()
            assert engine.states[0].regs[int(r)] == 7
            assert check_execution(log, "RC").ok
