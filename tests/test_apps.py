"""Application-level tests: functional verification and workload shape."""

import pytest

from repro import MultiprocessorConfig, TangoExecutor, build_app
from repro.apps import APP_NAMES, lu, ocean


class TestRegistry:
    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            build_app("nonesuch")

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            build_app("lu", preset="huge")

    def test_override_params(self):
        w = build_app("lu", preset="tiny", n=20)
        assert w.params["n"] == 20

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_builds_programs_for_all_cpus(self, app):
        w = build_app(app, preset="tiny", n_procs=4)
        assert w.n_procs == 4
        assert all(p.sealed for p in w.programs)
        assert w.static_instructions() > 0


class TestFunctionalCorrectness:
    """The session fixture already ran+verified all apps at 16 CPUs;
    these runs vary the processor count to catch partitioning bugs."""

    @pytest.mark.parametrize("app", APP_NAMES)
    @pytest.mark.parametrize("n_procs", [1, 3, 8])
    def test_verify_at_other_cpu_counts(self, app, n_procs):
        w = build_app(app, preset="tiny", n_procs=n_procs)
        config = MultiprocessorConfig(n_cpus=n_procs)
        result = TangoExecutor(w.programs, config, memory=w.memory).run()
        w.verify(result.memory)

    def test_lu_matches_reference_decomposition(self, tiny_runs):
        # verify() already ran; double-check determinism of the builder.
        w1 = build_app("lu", preset="tiny")
        w2 = build_app("lu", preset="tiny")
        base = w1.layout.segment("A")[0]
        for off in range(0, 24 * 24 * 8, 8):
            assert (
                w1.memory.read_double(base + off)
                == w2.memory.read_double(base + off)
            )


class TestWorkloadShape:
    def test_mp3d_uses_locks_and_barriers(self, tiny_runs):
        _, result = tiny_runs["mp3d"]
        stats = result.stats.cpu(0)
        assert stats.locks == 2          # one per step at tiny
        assert stats.barriers == 3       # start + one per step
        assert stats.read_misses > 0 and stats.write_misses > 0

    def test_lu_uses_events(self, tiny_runs):
        workload, result = tiny_runs["lu"]
        stats = result.stats.cpu(0)
        n = workload.params["n"]
        assert stats.barriers == 2       # as in the paper
        assert stats.wait_events == n    # one wait per column
        total_sets = sum(
            result.stats.cpu(c).set_events for c in range(16)
        )
        assert total_sets == n           # every column published once

    def test_pthor_is_lock_and_barrier_heavy(self, tiny_runs):
        _, result = tiny_runs["pthor"]
        stats = result.stats.cpu(0)
        assert stats.locks > 10
        assert stats.barriers > 10

    def test_locus_uses_central_work_lock(self, tiny_runs):
        workload, result = tiny_runs["locus"]
        total_locks = sum(
            result.stats.cpu(c).locks for c in range(16)
        )
        # One fetch per wire pair plus one sentinel fetch per processor.
        assert total_locks == workload.params["n_wires"] // 2 + 16

    def test_ocean_uses_only_barriers(self, tiny_runs):
        _, result = tiny_runs["ocean"]
        stats = result.stats.cpu(0)
        assert stats.locks == 0
        assert stats.barriers > 0

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_every_cpu_does_work(self, tiny_runs, app):
        _, result = tiny_runs[app]
        for cpu in range(16):
            assert result.stats.cpu(cpu).busy_cycles > 0

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_trace_covers_busy_cycles(self, tiny_runs, app):
        _, result = tiny_runs[app]
        assert len(result.trace(0)) == result.stats.cpu(0).busy_cycles


class TestOceanPartitioning:
    def test_row_ranges_cover_interior_exactly(self):
        n, procs = 20, 16
        rows = []
        for me in range(procs):
            lo, hi = ocean._row_range(me, procs, n)
            rows.extend(range(lo, hi))
        assert rows == list(range(1, n - 1))


class TestLUReference:
    def test_reference_lu_reconstructs_matrix(self):
        import numpy as np
        rng = np.random.default_rng(3)
        a = rng.uniform(0.5, 1.0, size=(8, 8)) + np.eye(8) * 8
        f = lu._reference_lu(a)
        lower = np.tril(f, -1) + np.eye(8)
        upper = np.triu(f)
        assert np.allclose(lower @ upper, a, rtol=1e-10)
