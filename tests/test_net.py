"""Tests for the interconnect/directory timing subsystem (repro.net).

Covers the event wheel (ordering, FIFO ties, overflow heap, idle clock
rewind), the topologies (crossbar port serialization, mesh X-Y routes),
the directory's request serialization, transaction-level latencies, the
ideal-backend equivalence of the executor on every application, the
compiled-vs-reference differential under a real network, the faulting-PC
annotation on misaligned accesses, and the contention experiment's
headline effect (overlapped DS misses see a more loaded network than
BASE's serial ones).
"""

import pytest

from repro import MultiprocessorConfig, TangoExecutor, build_app
from repro.apps import APP_NAMES
from repro.asm import AsmBuilder
from repro.mem import CoherentMemorySystem, MemoryError_
from repro.net import (
    NETWORK_KINDS,
    ContentionNetwork,
    Crossbar,
    DirectoryModel,
    EventWheel,
    Mesh,
    NetworkConfig,
    build_network,
)


class TestEventWheel:
    def test_events_fire_in_time_order(self):
        wheel = EventWheel()
        fired = []
        wheel.schedule(5, lambda t: fired.append(("a", t)))
        wheel.schedule(3, lambda t: fired.append(("b", t)))
        wheel.schedule(9, lambda t: fired.append(("c", t)))
        wheel.run()
        assert fired == [("b", 3), ("a", 5), ("c", 9)]

    def test_same_cycle_events_fire_fifo(self):
        wheel = EventWheel()
        fired = []
        for name in "abc":
            wheel.schedule(7, lambda t, n=name: fired.append(n))
        wheel.run()
        assert fired == ["a", "b", "c"]

    def test_overflow_beyond_wheel_size_still_fires(self):
        wheel = EventWheel(size=8)
        fired = []
        wheel.schedule(2, lambda t: fired.append(("near", t)))
        wheel.schedule(2000, lambda t: fired.append(("far", t)))
        wheel.run()
        assert fired == [("near", 2), ("far", 2000)]

    def test_callback_may_schedule_at_current_time(self):
        wheel = EventWheel()
        fired = []
        wheel.schedule(
            4, lambda t: wheel.schedule(t, lambda u: fired.append(u))
        )
        wheel.run()
        assert fired == [4]

    def test_idle_wheel_rewinds_for_earlier_transaction(self):
        # Per-CPU virtual clocks restart at 0 between model replays; an
        # idle wheel must accept the earlier timestamp verbatim instead
        # of clamping it to the old present.
        wheel = EventWheel()
        fired = []
        wheel.schedule(100, fired.append)
        wheel.run()
        wheel.schedule(10, fired.append)
        wheel.run()
        assert fired == [100, 10]

    def test_busy_wheel_clamps_stragglers_to_present(self):
        wheel = EventWheel()
        fired = []

        def first(t):
            fired.append(t)
            wheel.schedule(2, fired.append)  # in the wheel's past

        wheel.schedule(6, first)
        wheel.run()
        assert fired == [6, 6]


class TestTopologies:
    def test_crossbar_routes_inject_then_eject(self):
        xbar = Crossbar(4)
        route = xbar.route(1, 3)
        assert len(route) == 2
        assert xbar.route(2, 2) == ()
        # Every node pair shares the destination's ejection link.
        assert xbar.route(0, 3)[1] == xbar.route(1, 3)[1]
        assert xbar.route(0, 3)[0] != xbar.route(1, 3)[0]

    def test_mesh_xy_hop_counts(self):
        mesh = Mesh(16, width=4)
        # Manhattan distance plus inject and eject.
        assert mesh.hops(0, 15) == 8
        assert mesh.hops(0, 1) == 3
        assert mesh.hops(5, 5) == 0
        assert mesh.hops(3, 0) == 5

    def test_mesh_xy_route_is_dimension_ordered(self):
        mesh = Mesh(16, width=4)
        # 0 -> 10: X first (0->2), then Y (2->10); the X-leg links are
        # shared with the pure-horizontal route 0 -> 2.
        assert mesh.route(0, 10)[:3] == mesh.route(0, 2)[:3]

    def test_mesh_non_square_covers_all_nodes(self):
        mesh = Mesh(6, width=3)
        for src in range(6):
            for dst in range(6):
                hops = mesh.hops(src, dst)
                assert hops == 0 if src == dst else hops >= 3

    def test_link_queueing_serializes_messages(self):
        # Two back-to-back messages over the same route: the second
        # departs only when the first releases the link.
        net = ContentionNetwork(Crossbar(4), line_size=16)
        first = net._send(0, 1, 0)
        second = net._send(0, 1, 0)
        assert second > first


class TestDirectory:
    def test_home_distribution_round_robin(self):
        d = DirectoryModel(4, occupancy=4)
        assert [d.home(line) for line in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_racing_upgrades_serialize_at_home(self):
        # Two CPUs upgrade the same line at the same instant: the
        # directory's occupancy forces one to wait for the other.
        net = ContentionNetwork(Crossbar(4), line_size=16)
        lat0 = net.write_miss(0, line=5, sharers=(1,), now=0, upgrade=True)
        lat1 = net.write_miss(1, line=5, sharers=(0,), now=0, upgrade=True)
        assert lat1 > lat0

    def test_distinct_homes_do_not_serialize(self):
        net = ContentionNetwork(Crossbar(8), line_size=16)
        lat0 = net.replay_miss(0, addr=0 * 16, is_write=False, now=0)
        lat1 = net.replay_miss(1, addr=1 * 16, is_write=False, now=0)
        assert lat0 == lat1


class TestTransactions:
    def test_remote_dirty_line_costs_three_legs(self):
        cfg = NetworkConfig()
        net = ContentionNetwork(Crossbar(4), line_size=16, config=cfg)
        from_owner = net.read_miss(0, line=1, owner=2, now=0)
        net.reset()
        from_memory = net.read_miss(0, line=1, owner=None, now=0)
        # Memory is slower than a cache but two legs beat three plus a
        # lookup only through the latency parameters, not by fiat.
        assert from_owner != from_memory
        assert net.latencies == [from_memory]

    def test_upgrade_waits_for_ack_not_data(self):
        net = ContentionNetwork(Crossbar(4), line_size=16)
        upgrade = net.write_miss(0, line=1, sharers=(2,), now=0,
                                 upgrade=True)
        net.reset()
        full = net.write_miss(0, line=1, sharers=(2,), now=0)
        assert upgrade <= full

    def test_summary_percentiles(self):
        net = ContentionNetwork(Crossbar(4), line_size=16)
        assert net.summary()["count"] == 0
        for cpu in range(4):
            net.replay_miss(cpu, addr=cpu * 64, is_write=False, now=0)
        s = net.summary()
        assert s["count"] == 4
        assert s["p50"] <= s["p99"] <= s["max"]
        assert s["mean"] > 0

    def test_build_network_kinds(self):
        assert build_network("ideal", 4, 16) is None
        assert isinstance(build_network("crossbar", 4, 16).topology,
                          Crossbar)
        assert isinstance(build_network("mesh", 16, 16).topology, Mesh)
        with pytest.raises(ValueError):
            build_network("torus", 4, 16)
        assert set(NETWORK_KINDS) == {"ideal", "crossbar", "mesh"}


class TestCoherenceIntegration:
    def test_ideal_path_uses_fixed_penalty(self):
        mem = CoherentMemorySystem(n_cpus=2, miss_penalty=50)
        hit, stall = mem.access_ht(0, 0x100, False)
        assert (hit, stall) == (False, 50)

    def test_network_path_varies_latency(self):
        net = build_network("crossbar", 2, 16)
        mem = CoherentMemorySystem(n_cpus=2, miss_penalty=50, network=net)
        _, first = mem.access_ht(0, 0x100, False, 0)
        _, second = mem.access_ht(1, 0x200, True, 0)
        assert first != 50 or second != 50
        assert len(net.latencies) == 2

    def test_invalidation_acks_charged_to_writer(self):
        # Upgrades carry no data, so their latency is the invalidation/
        # ack round trip — it must grow with the sharer count.
        net = build_network("crossbar", 4, 16)
        mem = CoherentMemorySystem(n_cpus=4, miss_penalty=50, network=net)
        for cpu in range(4):
            mem.access_ht(cpu, 0x100, False, 0)
        net.reset()
        _, with_sharers = mem.access_ht(3, 0x100, True, 0)
        net2 = build_network("crossbar", 4, 16)
        mem2 = CoherentMemorySystem(n_cpus=4, miss_penalty=50, network=net2)
        mem2.access_ht(3, 0x100, False, 0)
        net2.reset()
        _, unshared = mem2.access_ht(3, 0x100, True, 0)
        assert with_sharers > unshared


def _run_app(app, network, compiled=True, n_procs=4):
    workload = build_app(app, n_procs=n_procs, preset="tiny")
    config = MultiprocessorConfig(
        n_cpus=n_procs, network=network,
        trace_cpus=tuple(range(n_procs)),
    )
    result = TangoExecutor(
        workload.programs, config, memory=workload.memory,
        compiled=compiled,
    ).run()
    workload.verify(result.memory)
    return result


class TestExecutorIntegration:
    @pytest.mark.parametrize("app", APP_NAMES)
    def test_ideal_backend_matches_default(self, app):
        default = _run_app(app, "ideal")
        explicit = _run_app(app, NETWORK_KINDS[0])
        assert default.stats.total_cycles == explicit.stats.total_cycles
        for cpu in range(4):
            assert (default.trace(cpu).columns()
                    == explicit.trace(cpu).columns())

    @pytest.mark.parametrize("network", ("crossbar", "mesh"))
    def test_compiled_matches_reference_under_network(self, network):
        fast = _run_app("lu", network, compiled=True)
        slow = _run_app("lu", network, compiled=False)
        assert fast.stats.total_cycles == slow.stats.total_cycles
        for cpu in range(4):
            assert fast.trace(cpu).columns() == slow.trace(cpu).columns()

    @pytest.mark.parametrize("compiled", (True, False))
    def test_misaligned_access_reports_thread_and_pc(self, compiled):
        b = AsmBuilder("misaligned")
        a = b.ireg("a")
        r = b.ireg("r")
        b.la(a, 0x1002)  # not word-aligned
        b.lw(r, a)
        b.halt()
        config = MultiprocessorConfig(n_cpus=1)
        with pytest.raises(MemoryError_) as exc:
            TangoExecutor([b.build()], config, compiled=compiled).run()
        assert "misaligned word read at 0x1002" in str(exc.value)
        assert "(thread 0, pc 1)" in str(exc.value)

    def test_misaligned_message_identical_across_engines(self):
        messages = []
        for compiled in (True, False):
            b = AsmBuilder("misaligned")
            a = b.ireg("a")
            b.la(a, 0x1001)
            b.sw(a, a)
            b.halt()
            config = MultiprocessorConfig(n_cpus=1)
            with pytest.raises(MemoryError_) as exc:
                TangoExecutor([b.build()], config, compiled=compiled).run()
            messages.append(str(exc.value))
        assert messages[0] == messages[1]


class TestContentionExperiment:
    @pytest.fixture(scope="class")
    def results(self, tmp_path_factory):
        from repro.experiments import TraceStore, run_contention

        store = TraceStore(
            n_procs=4, preset="tiny",
            cache_dir=tmp_path_factory.mktemp("traces"),
        )
        return run_contention(
            store, apps=("lu",), networks=("ideal", "mesh")
        )

    def test_ideal_rows_report_fixed_penalty(self, results):
        for _, summary in results["lu"]["ideal"]:
            assert summary["mean"] == 50.0
            assert summary["p50"] == summary["p99"] == 50

    def test_ds_sees_more_contention_than_base(self, results):
        rows = results["lu"]["mesh"]
        base_summary = rows[0][1]
        ds_summary = rows[-1][1]
        assert ds_summary["mean"] > base_summary["mean"]
        assert ds_summary["p99"] > base_summary["p99"]

    def test_ds_still_fastest_overall(self, results):
        rows = results["lu"]["mesh"]
        totals = [breakdown.total for breakdown, _ in rows]
        assert min(totals[1:]) < totals[0]

    def test_formatting_lists_all_backends(self, results):
        from repro.experiments import format_contention

        text = format_contention(results)
        assert "Contention — LU" in text
        assert "ideal" in text and "mesh" in text
        assert "p99" in text
