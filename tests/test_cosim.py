"""Tests for the co-simulation subsystem (repro.cosim).

Covers the acceptance criteria of the co-simulation engine:

* **ideal differential** — co-simulating on the ideal fabric reproduces
  the existing fixed-penalty per-model cycle counts exactly, for every
  processor kind and for both engines;
* **live feedback** — under a shared mesh, per-access latencies differ
  from the post-hoc ``contention`` replay of the same trace (the fabric
  carries all processors' load at once, so feedback is live);
* **determinism** — same config ⇒ byte-identical per-processor cycle
  counts and miss-latency sequences across repeated runs and across
  ``--engine {fast,reference}``;
* the live sync mode (schedule-resolved waits), the multicontext
  stepper's cosim participation, the ``contention`` experiment's reuse
  of the solo-replay path, the ``cosim`` batch job kind, and the CLI
  subcommand's manifest validation.
"""

import dataclasses
import json

import pytest

from repro.cosim import (
    CosimEngine,
    CosimNode,
    GenStepper,
    replay_solo,
    run_cosim,
)
from repro.cpu import ProcessorConfig, simulate
from repro.experiments.runner import TraceStore

N_PROCS = 4

KIND_CONFIGS = [
    ProcessorConfig(kind="base"),
    ProcessorConfig(kind="ssbr", model="SC"),
    ProcessorConfig(kind="ss", model="WO"),
    ProcessorConfig(kind="ds", model="RC", window=64),
]


@pytest.fixture(scope="session")
def cosim_store(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cosim_trace_cache")
    return TraceStore(n_procs=N_PROCS, preset="tiny", cache_dir=cache)


@pytest.fixture(scope="session")
def lu_cosim(cosim_store):
    return cosim_store.get_cosim("lu")


def _config(kind_config, engine):
    return dataclasses.replace(kind_config, engine=engine)


class TestSyncSchedule:
    def test_schedule_recorded_with_edges_and_episodes(self, lu_cosim):
        summary = lu_cosim.schedule.summary()
        assert summary["acquires"] > 0
        assert summary["edges"] > 0
        assert summary["episodes"] > 0
        # Every episode's arrivals are attached.
        assert summary["barrier_arrivals"] == sum(
            lu_cosim.schedule.episode_sizes
        )

    def test_all_processors_traced(self, lu_cosim):
        assert len(lu_cosim.traces) == N_PROCS
        for cpu, trace in enumerate(lu_cosim.traces):
            assert trace.cpu == cpu
            assert len(trace) > 0

    def test_cpu0_trace_matches_single_trace_cache(
        self, cosim_store, lu_cosim
    ):
        """Recording all cpus + the schedule must not perturb the
        functional execution: cpu0's trace is byte-identical to the
        single-cpu trace the rest of the experiments replay."""
        single = cosim_store.get("lu").trace.np_columns()
        cosim0 = lu_cosim.traces[0].np_columns()
        for col_single, col_cosim in zip(single, cosim0):
            assert (col_single == col_cosim).all()


class TestIdealDifferential:
    """cosim --network ideal == the fixed-penalty per-model counts."""

    @pytest.mark.parametrize(
        "kind_config", KIND_CONFIGS, ids=lambda c: c.kind
    )
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_matches_standalone_simulation(
        self, lu_cosim, kind_config, engine
    ):
        cfg = _config(kind_config, engine)
        standalone = [
            simulate(trace, cfg).total for trace in lu_cosim.traces
        ]
        result = run_cosim(lu_cosim, cfg, network_kind="ideal")
        assert result.cycles() == standalone

    def test_full_breakdowns_match(self, lu_cosim):
        cfg = ProcessorConfig(kind="ds", model="RC", window=64)
        result = run_cosim(lu_cosim, cfg, network_kind="ideal")
        for trace, cosim_bd in zip(lu_cosim.traces, result.breakdowns):
            solo = simulate(trace, cfg)
            assert solo.components() == cosim_bd.components()


class TestSharedFabric:
    @pytest.mark.parametrize(
        "kind_config", KIND_CONFIGS, ids=lambda c: c.kind
    )
    def test_fast_and_reference_engines_agree_on_mesh(
        self, cosim_store, lu_cosim, kind_config
    ):
        fast = run_cosim(
            lu_cosim, _config(kind_config, "fast"),
            network_kind="mesh", line_size=cosim_store.line_size,
        )
        ref = run_cosim(
            lu_cosim, _config(kind_config, "reference"),
            network_kind="mesh", line_size=cosim_store.line_size,
        )
        assert fast.cycles() == ref.cycles()
        assert fast.miss_latencies == ref.miss_latencies

    def test_deterministic_across_runs(self, cosim_store, lu_cosim):
        cfg = ProcessorConfig(kind="ds", model="RC", window=64)
        runs = [
            run_cosim(
                lu_cosim, cfg, network_kind="mesh",
                line_size=cosim_store.line_size,
            )
            for _ in range(2)
        ]
        assert runs[0].cycles() == runs[1].cycles()
        assert runs[0].miss_latencies == runs[1].miss_latencies
        assert runs[0].net_summary == runs[1].net_summary

    def test_live_feedback_differs_from_posthoc_replay(
        self, cosim_store, lu_cosim
    ):
        """The shared fabric carries all processors' load at once, so
        per-access latencies differ from the post-hoc solo replay of
        the same trace — proving the feedback is live, not replayed."""
        cfg = ProcessorConfig(kind="ds", model="RC", window=64)
        shared = run_cosim(
            lu_cosim, cfg, network_kind="mesh",
            line_size=cosim_store.line_size,
        )
        solo_bd, solo_net = replay_solo(
            lu_cosim.traces[0], cfg, "mesh", N_PROCS,
            cosim_store.line_size,
        )
        assert shared.miss_latencies[0] != solo_net.latencies
        # The shared fabric saw every processor's misses, not just one's.
        assert shared.net_summary["count"] > len(solo_net.latencies)
        assert shared.net_summary["count"] == sum(
            len(lats) for lats in shared.miss_latencies
        )
        # And every one of them was served by the shared directory.
        assert shared.dir_summary["serves"] == shared.net_summary["count"]

    def test_fabric_summaries_populated(self, cosim_store, lu_cosim):
        cfg = ProcessorConfig(kind="ssbr", model="RC")
        result = run_cosim(
            lu_cosim, cfg, network_kind="crossbar",
            line_size=cosim_store.line_size,
        )
        assert result.net_summary["count"] > 0
        assert result.link_summary["samples"] > 0
        assert result.dir_summary["serves"] == result.net_summary["count"]
        assert result.network_kind == "crossbar"


class TestLiveSync:
    @pytest.mark.parametrize(
        "kind_config", KIND_CONFIGS, ids=lambda c: c.kind
    )
    def test_completes_and_is_deterministic(
        self, cosim_store, lu_cosim, kind_config
    ):
        runs = [
            run_cosim(
                lu_cosim, kind_config, network_kind="mesh",
                line_size=cosim_store.line_size, sync_mode="live",
            )
            for _ in range(2)
        ]
        assert runs[0].cycles() == runs[1].cycles()
        assert runs[0].sync_waits == runs[1].sync_waits
        # Every processor got live answers (it joins the barriers).
        for waits in runs[0].sync_waits:
            assert len(waits) > 0

    def test_live_differs_from_replay(self, cosim_store, lu_cosim):
        cfg = ProcessorConfig(kind="ds", model="RC", window=64)
        live = run_cosim(
            lu_cosim, cfg, network_kind="mesh",
            line_size=cosim_store.line_size, sync_mode="live",
        )
        replay = run_cosim(
            lu_cosim, cfg, network_kind="mesh",
            line_size=cosim_store.line_size, sync_mode="replay",
        )
        assert live.cycles() != replay.cycles()

    def test_live_requires_schedule(self):
        node = CosimNode(GenStepper(iter(())))
        with pytest.raises(ValueError):
            CosimEngine([node], sync_mode="live")

    def test_live_rejects_multicontext(self, lu_cosim):
        with pytest.raises(ValueError):
            run_cosim(
                lu_cosim, ProcessorConfig(kind="mc"),
                sync_mode="live", contexts=2,
            )


class TestMultiContext:
    def test_completes_lu(self, lu_cosim):
        """The multicontext stepper participates in co-simulation:
        two contexts per node, replayed sync, runs to completion."""
        cfg = ProcessorConfig(kind="mc")
        result = run_cosim(
            lu_cosim, cfg, network_kind="ideal", contexts=2,
        )
        assert len(result.breakdowns) == N_PROCS // 2
        assert all(c > 0 for c in result.cycles())

    def test_mesh_reprices_misses(self, cosim_store, lu_cosim):
        cfg = ProcessorConfig(kind="mc")
        ideal = run_cosim(lu_cosim, cfg, network_kind="ideal", contexts=2)
        mesh = run_cosim(
            lu_cosim, cfg, network_kind="mesh",
            line_size=cosim_store.line_size, contexts=2,
        )
        assert mesh.cycles() != ideal.cycles()
        assert mesh.net_summary["count"] > 0

    def test_ideal_matches_standalone_runs(self, lu_cosim):
        from repro.cpu import simulate_multicontext

        result = run_cosim(
            lu_cosim, ProcessorConfig(kind="mc"),
            network_kind="ideal", contexts=2,
        )
        for node, start in enumerate(range(0, N_PROCS, 2)):
            solo = simulate_multicontext(
                lu_cosim.traces[start:start + 2]
            )
            assert solo.total == result.breakdowns[node].total


class TestContentionReuse:
    def test_replay_solo_matches_direct_simulation(self, cosim_store):
        """The contention experiment's solo replay goes through the
        cosim engine yet stays byte-identical to the direct call."""
        from repro.net import build_network

        run = cosim_store.get("lu")
        for engine in ("fast", "reference"):
            for kind in ("ideal", "mesh"):
                cfg = ProcessorConfig(
                    kind="ds", model="RC", window=64, engine=engine
                )
                net = build_network(
                    kind, N_PROCS, cosim_store.line_size
                )
                direct = simulate(run.trace, cfg, network=net)
                solo_bd, solo_net = replay_solo(
                    run.trace, cfg, kind, N_PROCS,
                    cosim_store.line_size,
                )
                assert direct.components() == solo_bd.components()
                if net is not None:
                    assert net.latencies == solo_net.latencies

    def test_contention_report_columns_unchanged(self, cosim_store):
        from repro.experiments.contention import (
            _app_contention,
            _ideal_summary,
        )

        per_net = _app_contention(
            cosim_store, "lu", ("ideal", "mesh"), None
        )
        run = cosim_store.get("lu")
        # Ideal rows keep the synthetic fixed-penalty summary.
        for _, summary in per_net["ideal"]:
            assert summary == _ideal_summary(
                run.trace, cosim_store.miss_penalty
            )
        # Network rows carry the observed distribution and queueing.
        for _, summary in per_net["mesh"]:
            assert summary["count"] > 0
            assert "q_mean" in summary and "q_max" in summary


class TestServiceJobKind:
    def test_grid_expands_and_labels_cosim(self):
        from repro.service import expand_grid

        jobs = expand_grid(
            ("lu",), kinds=("cosim",), models=("RC",),
            windows=(16, 64), networks=("mesh",),
        )
        assert len(jobs) == 2  # the window axis is kept, like ds
        assert jobs[0].label() == "lu/cosim/RC/w16/mesh/m50"
        assert jobs[0].config()["window"] == 16

    def test_sweep_worker_runs_cosim_job(self, cosim_store, lu_cosim):
        from repro.service.batch import _sweep_worker
        from repro.service.jobs import SweepJob

        job = SweepJob(
            app="lu", kind="cosim", model="RC", window=64,
            network="mesh", procs=N_PROCS, preset="tiny",
        )
        breakdown = _sweep_worker(
            job.config(), str(cosim_store.cache_dir)
        )
        assert breakdown.label == "COSIM-DS-RC-w64-mesh"
        per_cpu = breakdown.extras["per_cpu_cycles"]
        assert len(per_cpu) == N_PROCS
        # The aggregate is the sum of the per-processor breakdowns.
        assert breakdown.total == sum(per_cpu)
        assert breakdown.extras["net"]["count"] > 0


class TestCosimCLI:
    def test_subcommand_writes_validated_manifest(
        self, capsys, tmp_path, cosim_store, lu_cosim
    ):
        from repro.cli import main

        rc = main([
            "--procs", str(N_PROCS), "--preset", "tiny",
            "--cache-dir", str(cosim_store.cache_dir),
            "--network", "crossbar",
            "cosim", "lu", "--kind", "ds", "--out", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-processor outcomes" in out
        assert "directory occupancy" in out
        manifests = list(tmp_path.glob("*/manifest.json"))
        assert len(manifests) == 1
        manifest = json.loads(manifests[0].read_text())
        assert manifest["config"]["app"] == "lu"
        assert manifest["config"]["network"] == "crossbar"

    def test_parser_accepts_cosim_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "--network", "mesh", "cosim", "lu",
            "--kind", "mc", "--contexts", "2", "--sync", "replay",
        ])
        assert args.command == "cosim"
        assert args.kind == "mc"
        assert args.contexts == 2
