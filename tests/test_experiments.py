"""Tests for the experiment harness (on tiny workloads)."""

import pytest

from repro.experiments import (
    TraceStore,
    analyze_trace,
    figure3_configs,
    figure4_configs,
    format_breakdowns,
    format_figure1,
    format_headline,
    format_stacked_bars,
    format_table,
    format_table1,
    format_table2,
    format_table3,
    run_figure1,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.figure3 import run_figure3
from repro.experiments.headline import run_headline


@pytest.fixture(scope="module")
def tiny_store(tmp_path_factory):
    cache = tmp_path_factory.mktemp("traces")
    return TraceStore(preset="tiny", cache_dir=cache)


class TestTraceStore:
    def test_generates_and_verifies(self, tiny_store):
        run = tiny_store.get("lu")
        assert len(run.trace) > 0
        assert run.base.total > run.base.busy

    def test_memory_cache_hit(self, tiny_store):
        first = tiny_store.get("lu")
        second = tiny_store.get("lu")
        assert first is second

    def test_disk_cache_roundtrip(self, tiny_store):
        run = tiny_store.get("ocean")
        fresh = TraceStore(preset="tiny", cache_dir=tiny_store.cache_dir)
        loaded = fresh.get("ocean")
        assert len(loaded.trace) == len(run.trace)
        assert loaded.base.total == run.base.total

    def test_unknown_app_rejected(self, tiny_store):
        with pytest.raises(ValueError):
            tiny_store.get("bogus")


class TestTables:
    def test_table1_rows(self, tiny_store):
        rows = run_table1(tiny_store)
        assert len(rows) == 5
        for row in rows:
            assert row.busy_cycles > 0
            assert 0 < row.read_rate < 1000
            assert row.read_misses <= row.reads
        text = format_table1(rows)
        assert "MP3D" in text and "OCEAN" in text

    def test_table2_rows(self, tiny_store):
        rows = run_table2(tiny_store)
        by_app = {r.app: r for r in rows}
        assert by_app["lu"].locks == 0
        assert by_app["pthor"].locks > 0
        assert by_app["mp3d"].barriers > 0
        assert "locks" in format_table2(rows)

    def test_table3_rows(self, tiny_store):
        rows = run_table3(tiny_store)
        for row in rows:
            assert 0 < row.branch_pct < 50
            assert 50 < row.predicted_pct <= 100
            assert row.avg_distance > 1
        text = format_table3(rows)
        assert "%" in text

    def test_analyze_trace_counts_branches(self, tiny_store):
        run = tiny_store.get("lu")
        row = analyze_trace("lu", run.trace)
        assert row.branches > 0
        assert row.predicted <= row.branches


class TestFigures:
    def test_figure3_config_list(self):
        labels = [c.label() for c in figure3_configs()]
        assert labels[0] == "BASE"
        assert "DS-RC-w256" in labels
        assert "SSBR-PC" in labels
        assert len(labels) == 14

    def test_figure4_config_list(self):
        labels = [c.label() for c in figure4_configs()]
        assert labels[0] == "BASE"
        assert sum("nodep" in l for l in labels) == 5
        assert sum("pbp" in l for l in labels) == 10

    def test_figure3_single_app(self, tiny_store):
        results = run_figure3(tiny_store, apps=("ocean",))
        assert set(results) == {"ocean"}
        runs = results["ocean"]
        assert len(runs) == 14
        base = runs[0]
        assert all(r.total <= base.total * 1.05 for r in runs)

    def test_figure1(self):
        result = run_figure1()
        assert result["SC"]["makespan"] == 8 * 50
        assert result["RC"]["makespan"] < result["WO"]["makespan"] \
            <= result["SC"]["makespan"]
        text = format_figure1(result)
        assert "SC" in text and "->" in text

    def test_headline_math(self, tiny_store):
        result = run_headline(tiny_store, windows=(16, 64))
        for window, apps in result.items():
            for app, frac in apps.items():
                assert 0.0 <= frac <= 1.0
        assert result[64]["avg"] >= result[16]["avg"]
        text = format_headline(result)
        assert "paper avg" in text


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(set(len(l) for l in lines[1:])) == 1

    def test_format_breakdowns_and_bars(self, tiny_store):
        run = tiny_store.get("mp3d")
        from repro.cpu import ProcessorConfig, simulate
        runs = [
            run.base,
            simulate(run.trace,
                     ProcessorConfig(kind="ds", model="RC", window=64)),
        ]
        table = format_breakdowns("T", runs, run.base)
        assert "100.0" in table
        bars = format_stacked_bars("T", runs, run.base)
        assert "#" in bars and "legend" in bars
