"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_command_parses(self):
        args = build_parser().parse_args(
            ["--preset", "tiny", "run", "mp3d"]
        )
        assert args.command == "run"
        assert args.app == "mp3d"
        assert args.preset == "tiny"

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_all_experiments_have_subcommands(self):
        parser = build_parser()
        for name in ("table1", "table3", "figure3", "figure4",
                     "headline", "latency100", "sc-boost", "contexts",
                     "compiler-sched", "miss-analysis", "multi-issue"):
            args = parser.parse_args([name])
            assert args.command == name


class TestVerifyCommand:
    def test_parses_targets_and_options(self):
        args = build_parser().parse_args(
            ["verify", "litmus", "--model", "rc",
             "--schedules", "25", "--seed", "7", "--jobs", "2"]
        )
        assert args.command == "verify"
        assert args.target == "litmus"
        assert args.model == "rc"
        assert (args.schedules, args.seed, args.jobs) == (25, 7, 2)

    def test_accepts_app_and_litmus_names(self):
        parser = build_parser()
        for target in ("lu", "sb", "mp", "apps", "all"):
            assert parser.parse_args(["verify", target]).target == target
        with pytest.raises(SystemExit):
            parser.parse_args(["verify", "doom"])

    def test_litmus_run_reports_and_succeeds(self, capsys):
        rc = main(["verify", "sb", "--model", "pc", "--schedules", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[sb/PC] ok" in out
        assert "provably non-SC" in out
        assert "verification OK" in out

    def test_app_run_checks_all_models(self, capsys):
        rc = main(["--procs", "4", "verify", "lu"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[lu] ok" in out
        for model in ("SC", "PC", "WO", "RC"):
            assert f"{model}=ok" in out


class TestExecution:
    def test_run_verifies_and_reports(self, capsys, tmp_path):
        rc = main(["--preset", "tiny", "--cache-dir", str(tmp_path),
                   "run", "ocean"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "functional verification OK" in out
        assert "read/write misses" in out

    def test_figure1_prints_models(self, capsys, tmp_path):
        rc = main(["--cache-dir", str(tmp_path), "figure1"])
        assert rc == 0
        out = capsys.readouterr().out
        for model in ("SC", "PC", "WO", "RC"):
            assert model in out

    def test_simulate_prints_breakdowns(self, capsys, tmp_path):
        rc = main(["--preset", "tiny", "--cache-dir", str(tmp_path),
                   "simulate", "mp3d"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "BASE" in out and "DS-RC-w256" in out
        assert "legend" in out


class TestNetworkFlag:
    def test_network_defaults_to_ideal(self):
        args = build_parser().parse_args(["run", "lu"])
        assert args.network == "ideal"

    def test_network_choices(self):
        parser = build_parser()
        for kind in ("ideal", "crossbar", "mesh"):
            args = parser.parse_args(["--network", kind, "run", "lu"])
            assert args.network == kind
        with pytest.raises(SystemExit):
            parser.parse_args(["--network", "torus", "run", "lu"])

    def test_contention_subcommand_parses(self):
        args = build_parser().parse_args(
            ["--procs", "4", "--preset", "tiny", "contention",
             "--apps", "lu", "ocean"]
        )
        assert args.command == "contention"
        assert args.apps == ["lu", "ocean"]

    def test_verify_ooo_flag(self):
        parser = build_parser()
        assert parser.parse_args(["verify", "lb"]).ooo is False
        assert parser.parse_args(["verify", "lb", "--ooo"]).ooo is True

    def test_run_with_mesh_network(self, capsys):
        rc = main(["--procs", "2", "--preset", "tiny",
                   "--network", "mesh", "run", "lu"])
        assert rc == 0
        assert "functional verification OK" in capsys.readouterr().out

    def test_verify_ooo_litmus_end_to_end(self, capsys):
        rc = main(["verify", "lb", "--model", "rc",
                   "--schedules", "80", "--ooo"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[lb/RC] ok" in out
        assert "verification OK" in out


class TestBatchCommands:
    def test_batch_parses_grid_and_service_flags(self):
        args = build_parser().parse_args(
            ["batch", "--apps", "lu", "ocean", "--kinds", "base", "ds",
             "--models", "rc", "--windows", "16", "64",
             "--jobs", "4", "--timeout", "30", "--max-attempts", "2",
             "--chaos-crash", "0", "--chaos-hang", "1:1"]
        )
        assert args.command == "batch"
        assert args.apps == ["lu", "ocean"]
        assert args.kinds == ["base", "ds"]
        assert args.models == ["RC"]
        assert (args.jobs, args.timeout, args.max_attempts) == (4, 30.0, 2)
        assert args.chaos_crash == ["0"]
        assert args.chaos_hang == ["1:1"]

    def test_unknown_axis_values_exit_usage(self):
        parser = build_parser()
        for argv in (["batch", "--apps", "doom"],
                     ["batch", "--kinds", "vliw"],
                     ["batch", "--models", "tso"],
                     ["batch", "--networks", "torus"]):
            with pytest.raises(SystemExit) as exc_info:
                parser.parse_args(argv)
            assert exc_info.value.code == 2

    def test_bad_window_exits_bad_config(self, capsys, tmp_path):
        rc = main(["batch", "--apps", "lu", "--windows", "0",
                   "--out", str(tmp_path)])
        assert rc == 3
        assert "bad window" in capsys.readouterr().err

    def test_status_without_batches_exits_io(self, capsys, tmp_path):
        rc = main(["status", "--out", str(tmp_path / "nothing")])
        assert rc == 4
        assert "I/O error" in capsys.readouterr().err

    def test_batch_status_results_end_to_end(self, capsys, tmp_path):
        common = ["--preset", "tiny", "--procs", "4",
                  "--cache-dir", str(tmp_path / "traces")]
        out = str(tmp_path / "batches")
        rc = main(common + ["batch", "--apps", "lu",
                            "--kinds", "base", "ds", "--jobs", "2",
                            "--out", out])
        assert rc == 0
        assert "2/2 jobs done" in capsys.readouterr().out

        assert main(["status", "--out", out]) == 0
        status = capsys.readouterr().out
        assert "lu/base" in status and "lu/ds/RC/w64" in status

        assert main(["results", "--out", out]) == 0
        results = capsys.readouterr().out
        assert "cycles" in results and "lu/ds/RC/w64" in results

    def test_chaos_batch_exits_partial(self, capsys, tmp_path):
        common = ["--preset", "tiny", "--procs", "4",
                  "--cache-dir", str(tmp_path / "traces")]
        out = str(tmp_path / "batches")
        rc = main(common + ["batch", "--apps", "lu",
                            "--kinds", "base", "ds", "--jobs", "2",
                            "--out", out, "--max-attempts", "2",
                            "--chaos-fail", "0"])
        assert rc == 5
        summary = capsys.readouterr().out
        assert "1 failed" in summary and "FAILED" in summary
        # status mirrors the degraded exit code.
        assert main(["status", "--out", out]) == 5


class TestServiceCommands:
    def test_serve_parses_with_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert (args.host, args.port) == ("127.0.0.1", 8631)
        assert (args.jobs, args.queue_depth, args.grace) == (1, 64, 5.0)
        assert args.store.endswith("store")

    def test_submit_requires_endpoint(self):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["submit", "--apps", "lu"])
        assert exc_info.value.code == 2

    def test_submit_parses_grid_and_client_flags(self):
        args = build_parser().parse_args(
            ["submit", "--endpoint", "http://a:1", "http://b:2",
             "--apps", "lu", "--kinds", "base", "ds",
             "--priority", "3", "--wait", "--timeout", "60"]
        )
        assert args.endpoint == ["http://a:1", "http://b:2"]
        assert args.kinds == ["base", "ds"]
        assert (args.priority, args.wait, args.timeout) == (3, True, 60.0)

    def test_watch_parses(self):
        args = build_parser().parse_args(
            ["watch", "deadbeef01234567",
             "--endpoint", "http://127.0.0.1:8631"]
        )
        assert args.id == "deadbeef01234567"
        assert args.endpoint == "http://127.0.0.1:8631"

    def test_batch_accepts_endpoint_flag(self):
        args = build_parser().parse_args(
            ["batch", "--apps", "lu", "--endpoint", "http://a:1"]
        )
        assert args.endpoint == ["http://a:1"]

    def test_unreachable_daemon_exits_io(self, capsys):
        rc = main(["submit", "--endpoint", "http://127.0.0.1:1",
                   "--apps", "lu"])
        assert rc == 4
        assert "daemon error" in capsys.readouterr().err

    def test_submit_watch_end_to_end(self, capsys, tmp_path):
        import threading

        from repro.service import Daemon, make_server

        daemon = Daemon(store_dir=tmp_path / "store",
                        cache_dir=tmp_path / "traces")
        server = make_server(daemon)
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
        daemon.start()
        host, port = server.server_address[:2]
        endpoint = f"http://{host}:{port}"
        try:
            rc = main(["--preset", "tiny", "--procs", "4",
                       "submit", "--endpoint", endpoint,
                       "--apps", "lu", "--kinds", "base",
                       "--wait", "--timeout", "120"])
            out = capsys.readouterr().out
            assert rc == 0
            assert "accepted as job" in out
            assert "lu/base/ideal/m50" in out

            job_id = daemon.queue.jobs and next(
                iter(daemon.queue.jobs)
            )
            assert main(["watch", job_id,
                         "--endpoint", endpoint]) == 0
            assert "done" in capsys.readouterr().out

            # Resubmitting dedups onto the finished job.
            rc = main(["--preset", "tiny", "--procs", "4",
                       "submit", "--endpoint", endpoint,
                       "--apps", "lu", "--kinds", "base"])
            assert rc == 0
            assert "duplicate of job" in capsys.readouterr().out
        finally:
            server.shutdown()
            daemon.stop()
            server.server_close()


class TestProfileCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["profile", "lu"])
        assert args.command == "profile"
        assert (args.kind, args.model, args.window) == ("ds", "RC", 64)
        assert args.metrics is True
        assert args.trace is False
        assert args.out == "results/profiles"

    def test_network_after_subcommand_wins(self):
        args = build_parser().parse_args(
            ["profile", "lu", "--network", "mesh"]
        )
        assert args.network == "mesh"
        # The global flag still applies when the local one is omitted.
        args = build_parser().parse_args(
            ["--network", "crossbar", "profile", "lu"]
        )
        assert args.network == "crossbar"

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["profile", "ocean", "--kind", "ss", "--model", "wo",
             "--window", "128", "--trace", "--no-metrics"]
        )
        assert (args.kind, args.model, args.window) == ("ss", "WO", 128)
        assert args.trace is True and args.metrics is False

    def test_bad_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "lu", "--kind", "vliw"])

    def test_profile_end_to_end(self, capsys, tmp_path):
        rc = main(["--procs", "4", "--preset", "tiny",
                   "--cache-dir", str(tmp_path / "traces"),
                   "profile", "lu", "--network", "mesh", "--trace",
                   "--out", str(tmp_path / "profiles")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stall attribution" in out
        assert "trace.json" in out and "manifest.json" in out
        assert (
            tmp_path / "profiles" / "lu-ds-rc-mesh-w64" / "trace.json"
        ).exists()
