"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_command_parses(self):
        args = build_parser().parse_args(
            ["--preset", "tiny", "run", "mp3d"]
        )
        assert args.command == "run"
        assert args.app == "mp3d"
        assert args.preset == "tiny"

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_all_experiments_have_subcommands(self):
        parser = build_parser()
        for name in ("table1", "table3", "figure3", "figure4",
                     "headline", "latency100", "sc-boost", "contexts",
                     "compiler-sched", "miss-analysis", "multi-issue"):
            args = parser.parse_args([name])
            assert args.command == name


class TestExecution:
    def test_run_verifies_and_reports(self, capsys, tmp_path):
        rc = main(["--preset", "tiny", "--cache-dir", str(tmp_path),
                   "run", "ocean"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "functional verification OK" in out
        assert "read/write misses" in out

    def test_figure1_prints_models(self, capsys, tmp_path):
        rc = main(["--cache-dir", str(tmp_path), "figure1"])
        assert rc == 0
        out = capsys.readouterr().out
        for model in ("SC", "PC", "WO", "RC"):
            assert model in out

    def test_simulate_prints_breakdowns(self, capsys, tmp_path):
        rc = main(["--preset", "tiny", "--cache-dir", str(tmp_path),
                   "simulate", "mp3d"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "BASE" in out and "DS-RC-w256" in out
        assert "legend" in out
