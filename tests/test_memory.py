"""Tests for shared memory and the segment allocator."""

import pytest

from repro.mem import MemoryError_, SegmentAllocator, SharedMemory


class TestSharedMemory:
    def test_word_roundtrip(self):
        m = SharedMemory()
        m.write_word(0x100, 42)
        assert m.read_word(0x100) == 42

    def test_unwritten_reads_zero(self):
        m = SharedMemory()
        assert m.read_word(0x500) == 0
        assert m.read_double(0x508) == 0.0

    def test_double_roundtrip(self):
        m = SharedMemory()
        m.write_double(0x200, 3.125)
        assert m.read_double(0x200) == 3.125

    def test_negative_values(self):
        m = SharedMemory()
        m.write_word(0x10, -17)
        assert m.read_word(0x10) == -17

    @pytest.mark.parametrize("method,addr", [
        ("read_word", 0x101),
        ("write_word", 0x102),
        ("read_double", 0x104),
        ("write_double", 0x10C),
    ])
    def test_misaligned_rejected(self, method, addr):
        m = SharedMemory()
        with pytest.raises(MemoryError_):
            fn = getattr(m, method)
            if method.startswith("read"):
                fn(addr)
            else:
                fn(addr, 1)

    def test_words_written(self):
        m = SharedMemory()
        m.write_word(0, 1)
        m.write_word(4, 1)
        m.write_word(0, 2)
        assert m.words_written() == 2


class TestSegmentAllocator:
    def test_segments_do_not_overlap(self):
        a = SegmentAllocator()
        b1 = a.alloc("one", 100)
        b2 = a.alloc("two", 100)
        assert b2 >= b1 + 100

    def test_alignment(self):
        a = SegmentAllocator()
        a.alloc("odd", 13)
        base = a.alloc("aligned", 16, align=64)
        assert base % 64 == 0

    def test_alloc_words_and_doubles(self):
        a = SegmentAllocator()
        w = a.alloc_words("w", 10)
        d = a.alloc_doubles("d", 10)
        assert a.segment("w") == (w, 40)
        assert a.segment("d") == (d, 80)

    def test_duplicate_name_rejected(self):
        a = SegmentAllocator()
        a.alloc("x", 4)
        with pytest.raises(ValueError):
            a.alloc("x", 4)

    def test_bad_alignment_rejected(self):
        a = SegmentAllocator()
        with pytest.raises(ValueError):
            a.alloc("x", 4, align=3)

    def test_negative_size_rejected(self):
        a = SegmentAllocator()
        with pytest.raises(ValueError):
            a.alloc("x", -1)

    def test_top_advances(self):
        a = SegmentAllocator(base=0)
        a.alloc("x", 32)
        assert a.top >= 32

    def test_segments_listing(self):
        a = SegmentAllocator()
        a.alloc("x", 4)
        a.alloc("y", 8)
        assert set(a.segments()) == {"x", "y"}
