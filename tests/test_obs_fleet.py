"""Tests for fleet-wide observability: distributed traces, structured
logs, Prometheus exposition, and perf-regression tracking.

The span/stitch unit tests exercise the cross-process invariants the
service relies on (nesting survives independent rounding, duplicate
span ids are rejected, corrupt side files are skipped); the
integration test runs a real chaos-injected batch and checks the
stitched timeline survives worker crashes and retries.  The Prometheus
encoder is checked against a line-format parser written here, not
against string snapshots.
"""

import json
import math
import re

import pytest

from repro import bench
from repro.obs import (
    JsonLogger,
    MetricsRegistry,
    NULL_LOG,
    Span,
    SpanSink,
    TraceContext,
    prom_name,
    read_spans,
    render_prometheus,
    stitch,
    validate_trace,
    write_spans,
)
from repro.service import ChaosSpec, expand_grid, run_batch


def _span(span_id, name="s", parent=None, start=0.0, end=1.0,
          trace_id="aa" * 8, process="p", thread="main", **args):
    return Span(
        trace_id, span_id, parent, name, process, thread, start, end,
        args=dict(args),
    )


class TestTraceContext:
    def test_mint_parse_header_roundtrip(self):
        ctx = TraceContext.mint()
        assert re.fullmatch(r"[0-9a-f]{16}", ctx.trace_id)
        assert re.fullmatch(r"[0-9a-f]{8}", ctx.span_id)
        again = TraceContext.parse(ctx.header())
        assert again == ctx

    def test_parse_normalizes_case_and_whitespace(self):
        ctx = TraceContext.parse("  AB" + "cd" * 7 + "-DEADBEEF \n")
        assert ctx.trace_id == "ab" + "cd" * 7
        assert ctx.span_id == "deadbeef"

    @pytest.mark.parametrize("junk", [
        "", "nope", "short-beef", "gg" * 8 + "-deadbeef",
        "ab" * 8 + "-deadbeef-extra", "ab" * 8,
    ])
    def test_parse_rejects_junk(self, junk):
        with pytest.raises(ValueError):
            TraceContext.parse(junk)

    def test_child_keeps_trace_id(self):
        root = TraceContext.mint()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        assert root.to_dict() == {
            "trace_id": root.trace_id, "parent_id": root.span_id,
        }


class TestSpanTransport:
    def test_dict_roundtrip(self):
        span = _span("s1", parent="p1", start=1.5, end=2.5, pid=42)
        again = Span.from_dict(
            json.loads(json.dumps(span.to_dict()))
        )
        assert again == span

    def test_sink_bounds_and_filters(self):
        sink = SpanSink(capacity=10)
        for i in range(25):
            sink.record(_span(f"s{i}", trace_id=("ab" if i % 2 else "cd") * 8))
        assert len(sink) <= 10
        assert sink.dropped > 0
        assert all(
            s.trace_id == "ab" * 8 for s in sink.spans("ab" * 8)
        )

    def test_side_files_skip_corrupt_lines(self, tmp_path):
        side = tmp_path / "spans" / "t-1.jsonl"
        write_spans(side, [_span("s1"), _span("s2")])
        with side.open("a") as f:
            f.write("{truncated by a SIGKILL\n")
        write_spans(tmp_path / "spans" / "t-2.jsonl", [_span("s3")])
        # File and directory forms agree; the corrupt line vanishes.
        assert {s.span_id for s in read_spans(side)} == {"s1", "s2"}
        assert {s.span_id for s in read_spans(tmp_path / "spans")} == {
            "s1", "s2", "s3",
        }
        assert read_spans(tmp_path / "absent") == []


class TestStitch:
    def test_duplicate_span_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate span id"):
            stitch([_span("same", name="a"), _span("same", name="b")])

    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError, match="ends before"):
            stitch([_span("s1", start=2.0, end=1.0)])

    def test_nesting_survives_rounding(self):
        # Sub-microsecond float intervals where rounding each span's
        # *duration* (instead of each endpoint) would push the child
        # outside its parent: child [0.6us, 2.4us] has naive dur
        # round(1.8) = 2 at ts round(0.6) = 1, escaping the parent's
        # [0, round(2.5) = 2].  Endpoint rounding keeps it nested.
        parent = _span("par", name="job", start=0.0, end=2.5e-6)
        child = _span(
            "chi", name="attempt", parent="par",
            start=0.6e-6, end=2.4e-6,
        )
        doc = stitch([parent, child])
        assert validate_trace(doc) == []
        events = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"
        }
        c, p = events["attempt"], events["job"]
        assert p["ts"] <= c["ts"]
        assert c["ts"] + c["dur"] <= p["ts"] + p["dur"]

    def test_stitch_metadata_and_parentage_args(self):
        doc = stitch(
            [_span("s1"), _span("s2", parent="s1", process="q")],
            other_data={"batch_id": "b1"},
        )
        assert doc["otherData"]["span_count"] == 2
        assert doc["otherData"]["trace_ids"] == ["aa" * 8]
        assert doc["otherData"]["batch_id"] == "b1"
        by_id = {
            e["args"]["span_id"]: e
            for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert by_id["s2"]["args"]["parent_id"] == "s1"


class TestChaosBatchTrace:
    """The stitched timeline survives worker crashes and retries."""

    def test_trace_survives_crash_and_retry(self, tmp_path):
        sweep = expand_grid(
            apps=("lu",), kinds=("base", "ds"), models=("RC",),
            windows=(16,), networks=("ideal",), penalties=(50,),
            procs=4, preset="tiny",
        )
        trace = TraceContext.mint()
        report = run_batch(
            sweep,
            jobs=2,
            cache_dir=None,
            out_dir=tmp_path / "batches",
            chaos=ChaosSpec(crash={0: 1}),  # SIGKILL job 0's attempt 1
            max_attempts=3,
            trace=trace,
        )
        assert not report.partial
        crashed = report.records[0]
        assert crashed.attempts == 2  # died once, then succeeded

        doc = json.loads((report.out_dir / "trace.json").read_text())
        assert validate_trace(doc) == []
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert all(
            e["args"]["trace_id"] == trace.trace_id for e in events
        )
        # Every span's parent exists; the only root is the batch span.
        ids = {e["args"]["span_id"] for e in events}
        roots = [
            e for e in events if e["args"]["parent_id"] is None
        ]
        assert [e["name"] for e in roots] == [
            f"batch {report.batch_id}"
        ]
        assert all(
            e["args"]["parent_id"] in ids for e in events
            if e["args"]["parent_id"] is not None
        )
        # The crashed job contributed one attempt span per attempt,
        # each nested (by parentage) under that job's span.
        job_span = next(
            e for e in events
            if e["name"] == f"job {crashed.label}"
        )
        attempts = [
            e for e in events
            if e["name"].startswith("attempt")
            and e["args"]["parent_id"] == job_span["args"]["span_id"]
        ]
        assert [e["name"] for e in sorted(
            attempts, key=lambda e: e["ts"]
        )] == ["attempt 1", "attempt 2"]
        # The surviving attempt produced worker-side engine spans.
        assert any(e["name"].startswith("run ") for e in events)
        assert any(e["name"] == "simulate" for e in events)


def _parse_prom(text: str):
    """Minimal Prometheus text-format (0.0.4) line parser.

    Returns ``(families, samples)`` where families maps the TYPE-line
    metric name to its kind and samples maps ``(name, labels)`` (labels
    as a sorted tuple of pairs) to the float value.  Raises on any line
    that is neither a comment nor a well-formed sample.
    """
    line_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
    )
    label_re = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
    families: dict[str, str] = {}
    samples: dict[tuple, float] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split()
            assert name not in families, f"duplicate TYPE for {name}"
            families[name] = kind
            continue
        assert not line.startswith("#"), line
        m = line_re.match(line)
        assert m, f"malformed sample line: {line!r}"
        name, label_str, value = m.groups()
        labels = tuple(sorted(
            (k, v) for k, v in label_re.findall(label_str or "")
        ))
        key = (name, labels)
        assert key not in samples, f"duplicate sample {key}"
        samples[key] = float(value)
    return families, samples


class TestPrometheusEncoder:
    def test_families_and_samples_parse(self):
        reg = MetricsRegistry()
        reg.counter("daemon.submitted").inc(3)
        reg.gauge("service.workers", labels={"state": "busy"}).set(2)
        reg.gauge("service.workers", labels={"state": "idle"}).set(1)
        hist = reg.histogram("daemon.job_wait_seconds",
                             bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(v)
        reg.reservoir("net.miss_latency_series").sample(0, 7)

        text = render_prometheus(reg)
        families, samples = _parse_prom(text)

        assert families["repro_daemon_submitted_total"] == "counter"
        assert families["repro_service_workers"] == "gauge"
        assert families["repro_daemon_job_wait_seconds"] == "histogram"
        # Reservoirs have no Prometheus equivalent.
        assert not any("miss_latency_series" in n for n in families)

        assert samples[("repro_daemon_submitted_total", ())] == 3
        assert samples[(
            "repro_service_workers", (("state", "busy"),)
        )] == 2
        assert samples[(
            "repro_service_workers", (("state", "idle"),)
        )] == 1

        # Histogram buckets are cumulative and end at +Inf == _count.
        buckets = [
            (labels, value) for (name, labels), value in samples.items()
            if name == "repro_daemon_job_wait_seconds_bucket"
        ]
        by_le = {dict(labels)["le"]: value for labels, value in buckets}
        assert by_le["0.1"] == 1
        assert by_le["1.0"] == 3
        assert by_le["10.0"] == 4
        assert by_le["+Inf"] == 5
        counts = [by_le[le] for le in ("0.1", "1.0", "10.0", "+Inf")]
        assert counts == sorted(counts)
        assert samples[("repro_daemon_job_wait_seconds_count", ())] == 5
        assert math.isclose(
            samples[("repro_daemon_job_wait_seconds_sum", ())], 56.05
        )

    def test_every_sample_belongs_to_a_declared_family(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.gauge("c.d").set(1)
        reg.histogram("e.f", bounds=(1,)).observe(2)
        families, samples = _parse_prom(render_prometheus(reg))
        suffixes = ("_bucket", "_sum", "_count")
        for name, _ in samples:
            base = name
            for suffix in suffixes:
                if name.endswith(suffix) and name[: -len(suffix)] in families:
                    base = name[: -len(suffix)]
                    break
            assert base in families, name

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.gauge("g", labels={"k": 'a"b\\c\nd'}).set(1)
        text = render_prometheus(reg)
        (line,) = [
            l for l in text.splitlines() if not l.startswith("#")
        ]
        assert '\\"' in line and "\\\\" in line and "\\n" in line
        assert "\n" not in line

    def test_name_sanitization(self):
        assert prom_name("daemon.queue_depth") == (
            "repro_daemon_queue_depth"
        )
        assert prom_name("weird-name.x/y") == "repro_weird_name_x_y"

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestJsonLogger:
    def test_writes_jsonl_with_bound_fields(self, tmp_path):
        path = tmp_path / "svc.log"
        log = JsonLogger.to_path(path, level="info")
        child = log.bind(job="j1", trace="t1")
        child.info("queue.accepted", depth=3)
        child.debug("queue.noise")  # below level: dropped
        child.warning("pool.retry_scheduled", backoff=0.5)
        log.close()
        lines = [
            json.loads(l) for l in path.read_text().splitlines()
        ]
        assert [l["event"] for l in lines] == [
            "queue.accepted", "pool.retry_scheduled",
        ]
        assert lines[0]["job"] == "j1"
        assert lines[0]["trace"] == "t1"
        assert lines[0]["depth"] == 3
        assert lines[0]["level"] == "info"
        assert "ts" in lines[0] and "mono" in lines[0]

    def test_null_log_is_disabled_noop(self):
        assert not NULL_LOG.enabled
        NULL_LOG.info("nobody.home", x=1)  # must not raise
        assert not NULL_LOG.bind(a=1).enabled

    def test_bad_level_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonLogger.to_path(tmp_path / "x.log", level="loud")


class TestBench:
    BASE = {
        "compiled_speedup": 4.0,
        "static_speedup": 4.0,
        "obs_disabled_overhead": 1.0,
    }

    def test_higher_better_direction(self):
        deltas = bench.check(
            {"compiled_speedup": 2.0}, {"compiled_speedup": 4.0}
        )
        (d,) = deltas
        assert not d.ok  # 2.0 < 4.0 * (1 - 0.35)
        deltas = bench.check(
            {"compiled_speedup": 2.7}, {"compiled_speedup": 4.0}
        )
        assert deltas[0].ok  # 2.7 >= 2.6

    def test_lower_better_direction(self):
        bad = bench.check(
            {"obs_disabled_overhead": 1.1},
            {"obs_disabled_overhead": 1.0},
        )
        assert not bad[0].ok  # 1.1 > 1.0 * 1.05
        good = bench.check(
            {"obs_disabled_overhead": 1.04},
            {"obs_disabled_overhead": 1.0},
        )
        assert good[0].ok

    def test_missing_metrics_skipped(self):
        deltas = bench.check({"compiled_speedup": 4.0}, {})
        assert deltas == []
        deltas = bench.check({}, {"compiled_speedup": 4.0})
        assert deltas == []

    def test_absolute_throughput_not_gated(self):
        deltas = bench.check(
            {"interp_instr_per_s": 1, **self.BASE},
            {"interp_instr_per_s": 10**9, **self.BASE},
        )
        assert all(d.ok for d in deltas)
        assert not any(
            d.metric == "interp_instr_per_s" for d in deltas
        )

    def test_format_reports_regressions(self):
        deltas = bench.check(
            {"compiled_speedup": 1.0}, {"compiled_speedup": 4.0}
        )
        out = bench.format_check(deltas)
        assert "REGRESSED" in out
        assert "FAILED" in out

    def test_history_roundtrip_skips_corrupt(self, tmp_path):
        hist = tmp_path / "hist.jsonl"
        bench.append_history({"compiled_speedup": 4.0}, hist)
        hist.open("a").write("not json\n")
        bench.append_history({"compiled_speedup": 4.1}, hist)
        entries = bench.load_history(hist)
        assert [
            e["payload"]["compiled_speedup"] for e in entries
        ] == [4.0, 4.1]
        assert all("recorded_at" in e for e in entries)

    def test_load_payload_errors(self, tmp_path):
        with pytest.raises(ValueError, match="no bench payload"):
            bench.load_payload(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ValueError, match="not a JSON object"):
            bench.load_payload(bad)
