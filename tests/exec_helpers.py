"""Single-thread program execution helper shared by the test modules."""

from __future__ import annotations

from repro.asm import AsmBuilder
from repro.isa import Op
from repro.mem import SharedMemory
from repro.tango import ThreadState, execute_instruction


def run_program(builder: AsmBuilder, memory: SharedMemory | None = None,
                max_steps: int = 100_000) -> ThreadState:
    """Execute a built program to HALT; returns the final thread state."""
    program = builder.build()
    memory = memory if memory is not None else SharedMemory()
    state = ThreadState(tid=0, program=program)
    for _ in range(max_steps):
        if program.instructions[state.pc].op is Op.HALT:
            return state
        execute_instruction(state, memory)
    raise AssertionError("program did not halt")
