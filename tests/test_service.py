"""Tests for the resilient batch-simulation service layer.

The chaos injectors fire *inside* real worker processes (actual
SIGKILLs, actual sleeps, actual byte flips), so these tests exercise
the supervisor against genuine failures, not mocks.
"""

import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.runner import TraceStore
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    ALWAYS,
    ChaosSpec,
    Job,
    JobsFailedError,
    ResultStore,
    SupervisedPool,
    SweepJob,
    echo_job,
    expand_grid,
    parse_chaos_arg,
    result_key,
    run_batch,
    run_jobs,
    shard,
    square_job,
)
from repro.service.pool import STATE_DONE, STATE_FAILED


class TestRunJobs:
    def test_serial_path(self):
        out = run_jobs(square_job, [(i,) for i in range(5)], jobs=1)
        assert out == [0, 1, 4, 9, 16]

    def test_parallel_results_in_submission_order(self):
        out = run_jobs(square_job, [(i,) for i in range(12)], jobs=4)
        assert out == [i * i for i in range(12)]

    def test_single_task_stays_serial(self):
        # One task never pays the process-spawn cost.
        assert run_jobs(square_job, [(7,)], jobs=8) == [49]

    def test_error_raises_jobs_failed(self):
        with pytest.raises(JobsFailedError) as exc_info:
            run_jobs(
                square_job, [("not-an-int",), (2,)], jobs=2,
                max_attempts=2,
            )
        failures = exc_info.value.failures
        assert len(failures) == 1
        assert failures[0].index == 0
        assert failures[0].reason == "error"
        assert failures[0].attempts == 2


class TestChaosRecovery:
    def test_crash_retried(self):
        metrics = MetricsRegistry(enabled=True)
        out = run_jobs(
            square_job, [(i,) for i in range(4)], jobs=2,
            chaos=ChaosSpec(crash={1: 1}), max_attempts=3,
            metrics=metrics,
        )
        assert out == [0, 1, 4, 9]
        assert metrics.get("service.crashes").value == 1
        assert metrics.get("service.retries").value == 1
        assert metrics.get("service.worker_restarts").value >= 1

    def test_transient_exception_retried(self):
        out = run_jobs(
            echo_job, [(i,) for i in range(3)], jobs=2,
            chaos=ChaosSpec(fail={0: 1}), max_attempts=2,
        )
        assert out == [0, 1, 2]

    def test_corrupt_payload_retried(self):
        metrics = MetricsRegistry(enabled=True)
        out = run_jobs(
            echo_job, [(i,) for i in range(3)], jobs=2,
            chaos=ChaosSpec(corrupt={2: 1}), max_attempts=2,
            metrics=metrics,
        )
        assert out == [0, 1, 2]
        assert metrics.get("service.corrupt_payloads").value == 1

    def test_hang_killed_and_retried(self):
        metrics = MetricsRegistry(enabled=True)
        t0 = time.monotonic()
        out = run_jobs(
            echo_job, [(i,) for i in range(3)], jobs=2,
            chaos=ChaosSpec(hang={1: 1}), timeout=0.5, max_attempts=2,
            metrics=metrics,
        )
        assert out == [0, 1, 2]
        assert metrics.get("service.timeouts").value == 1
        # One injected hang must not cost more than ~one timeout budget.
        assert time.monotonic() - t0 < 10.0

    def test_persistent_crash_quarantined_others_survive(self):
        with pytest.raises(JobsFailedError) as exc_info:
            run_jobs(
                square_job, [(i,) for i in range(4)], jobs=2,
                chaos=ChaosSpec(crash={2: ALWAYS}), max_attempts=2,
            )
        failures = exc_info.value.failures
        assert [f.index for f in failures] == [2]
        assert failures[0].reason == "crash"
        history = failures[0].to_dict()["history"]
        assert [h["attempt"] for h in history] == [1, 2]


class TestSupervisedPool:
    def test_partial_results_never_raise(self):
        pool = SupervisedPool(
            workers=2, max_attempts=2, chaos=ChaosSpec(fail={1: ALWAYS})
        )
        jobs = [
            Job(index=i, fn=square_job, args=(i,)) for i in range(4)
        ]
        pool.run(jobs)
        assert [j.state for j in jobs] == [
            STATE_DONE, STATE_FAILED, STATE_DONE, STATE_DONE
        ]
        assert jobs[1].failure().attempts == 2

    def test_backoff_is_deterministic_and_bounded(self):
        pool_a = SupervisedPool(workers=1, seed=3, backoff_base=0.1,
                                backoff_cap=1.0)
        pool_b = SupervisedPool(workers=1, seed=3, backoff_base=0.1,
                                backoff_cap=1.0)
        for index in range(4):
            for attempt in range(1, 6):
                d = pool_a.backoff_delay(index, attempt)
                assert d == pool_b.backoff_delay(index, attempt)
                assert 0.0 < d <= 1.0
        assert (
            pool_a.backoff_delay(0, 1)
            != SupervisedPool(workers=1, seed=4).backoff_delay(0, 1)
        )

    def test_backoff_grows_before_cap(self):
        pool = SupervisedPool(workers=1, seed=0, backoff_base=0.05,
                              backoff_cap=100.0)
        # Jitter is within [0.5, 1.0] x raw, so doubling the raw delay
        # always beats the previous attempt's upper bound... eventually.
        assert pool.backoff_delay(0, 3) < pool.backoff_delay(0, 5)

    def test_retry_success_byte_identical_to_first_try(self):
        """Property: a result that needed retries is byte-for-byte the
        result an unfaulted run produces."""
        args = [(i,) for i in range(4)]

        def payloads(chaos):
            jobs = [
                Job(index=i, fn=square_job, args=a)
                for i, a in enumerate(args)
            ]
            SupervisedPool(workers=2, max_attempts=3, chaos=chaos).run(jobs)
            assert all(j.state == STATE_DONE for j in jobs)
            return [j.payload for j in jobs]

        clean = payloads(None)
        faulted = payloads(
            ChaosSpec(crash={0: 1}, corrupt={2: 1}, fail={3: 1})
        )
        assert clean == faulted
        assert clean == [
            pickle.dumps(i * i, pickle.HIGHEST_PROTOCOL)
            for i in range(4)
        ]


class TestChaosSpec:
    def test_attempt_bounds(self):
        spec = ChaosSpec(fail={0: 2})
        with pytest.raises(Exception):
            spec.before(0, 1)
        with pytest.raises(Exception):
            spec.before(0, 2)
        spec.before(0, 3)  # bound exhausted: no fault
        spec.before(1, 1)  # other jobs unaffected

    def test_corrupt_flips_but_preserves_length(self):
        payload = pickle.dumps([1, 2, 3])
        mutated = ChaosSpec(corrupt={0: 1}).after(0, 1, payload)
        assert mutated != payload
        assert len(mutated) == len(payload)
        assert ChaosSpec().after(0, 1, payload) == payload

    def test_parse_chaos_arg(self):
        mapping: dict[int, int] = {}
        parse_chaos_arg(mapping, "3")
        parse_chaos_arg(mapping, "5:2")
        assert mapping == {3: ALWAYS, 5: 2}
        for bad in ("x", "3:-1", "-1", "3:y"):
            with pytest.raises(ValueError):
                parse_chaos_arg({}, bad)


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path, git_rev="abc")
        key = store.key({"app": "lu", "kind": "ds"})
        store.put(key, {"total": 123}, meta={"label": "lu/ds"})
        assert store.get(key) == {"total": 123}
        assert store.meta(key) == {"label": "lu/ds"}
        assert store.keys() == [key]

    def test_key_ignores_dict_order(self):
        a = result_key({"app": "lu", "window": 64}, git_rev="r")
        b = result_key({"window": 64, "app": "lu"}, git_rev="r")
        assert a == b

    def test_key_varies_with_rev_and_schema_version(self):
        config = {"app": "lu"}
        assert result_key(config, git_rev="r1") != result_key(
            config, git_rev="r2"
        )
        assert (
            result_key(config, git_rev="r", trace_version=1)
            != result_key(config, git_rev="r", trace_version=2)
        )

    def test_missing_key_is_miss(self, tmp_path):
        store = ResultStore(tmp_path, git_rev="abc")
        assert store.get_bytes("0" * 64) is None

    @pytest.mark.parametrize("mutation", ["truncate", "flip", "garbage"])
    def test_corruption_evicts_and_regenerates(self, tmp_path, mutation):
        metrics = MetricsRegistry(enabled=True)
        store = ResultStore(tmp_path, git_rev="abc", metrics=metrics)
        key = store.key({"app": "lu"})
        store.put(key, list(range(100)))
        path = store.path(key)
        raw = path.read_bytes()
        if mutation == "truncate":
            path.write_bytes(raw[: len(raw) // 2])
        elif mutation == "flip":
            broken = bytearray(raw)
            broken[-20] ^= 0xFF
            path.write_bytes(bytes(broken))
        else:
            path.write_bytes(b"not a pickle at all")
        # Corrupt record: reported as a miss and deleted from disk.
        assert store.get(key) is None
        assert not path.exists()
        assert metrics.get("service.store_corrupt").value == 1
        # The caller regenerates; the store is healthy again.
        store.put(key, list(range(100)))
        assert store.get(key) == list(range(100))

    def test_wrong_key_record_rejected(self, tmp_path):
        store = ResultStore(tmp_path, git_rev="abc")
        key_a = store.key({"app": "lu"})
        key_b = store.key({"app": "ocean"})
        store.put(key_a, "A")
        # A record copied to the wrong address must not be served.
        store.path(key_b).parent.mkdir(parents=True, exist_ok=True)
        store.path(key_b).write_bytes(store.path(key_a).read_bytes())
        assert store.get(key_b) is None


class TestSweepGrid:
    def test_base_collapses_models_and_windows(self):
        grid = expand_grid(
            ["lu"], kinds=("base",), models=("SC", "RC"),
            windows=(16, 64),
        )
        assert len(grid) == 1
        assert grid[0].config()["model"] == "-"
        assert grid[0].config()["window"] == 0

    def test_static_kinds_collapse_windows_only(self):
        grid = expand_grid(
            ["lu"], kinds=("ssbr",), models=("SC", "RC"),
            windows=(16, 64),
        )
        assert len(grid) == 2  # one per model; windows deduped

    def test_ds_keeps_all_axes(self):
        grid = expand_grid(
            ["lu", "ocean"], kinds=("ds",), models=("RC",),
            windows=(16, 64), penalties=(50, 100),
        )
        assert len(grid) == 8

    def test_engine_never_in_config(self):
        job = SweepJob(app="lu", engine="reference")
        assert "engine" not in job.config()
        assert SweepJob(app="lu", engine="fast").config() == job.config()

    def test_bad_axes_rejected(self):
        with pytest.raises(ValueError):
            expand_grid(["doom"])
        with pytest.raises(ValueError):
            expand_grid(["lu"], kinds=("vliw",))
        with pytest.raises(ValueError):
            expand_grid(["lu"], models=("TSO",))
        with pytest.raises(ValueError):
            expand_grid(["lu"], windows=(0,))
        with pytest.raises(ValueError):
            expand_grid(["lu"], penalties=(-1,))

    def test_labels_unique(self):
        grid = expand_grid(
            ["lu"], kinds=("base", "ssbr", "ds"), models=("SC", "RC"),
            windows=(16, 64),
        )
        labels = [job.label() for job in grid]
        assert len(labels) == len(set(labels))

    def test_shard_covers_everything_in_order(self):
        jobs = list(range(10))
        shards = shard(jobs, 3)
        assert len(shards) == 3
        assert [j for s in shards for j in s] == jobs
        assert shard(jobs, 100) == [[j] for j in jobs]


class TestShardDeterminism:
    """The multi-endpoint dispatcher depends on these properties."""

    GRID = dict(
        apps=("lu", "mp3d"), kinds=("base", "ssbr", "ds"),
        models=("SC", "RC"), windows=(16, 64), penalties=(50, 100),
    )

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 7, 64])
    def test_same_grid_same_partition(self, n_shards):
        first = shard(expand_grid(**self.GRID), n_shards)
        second = shard(expand_grid(**self.GRID), n_shards)
        assert first == second

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 7, 64])
    def test_disjoint_and_exhaustive(self, n_shards):
        jobs = expand_grid(**self.GRID)
        shards = shard(jobs, n_shards)
        flat = [job for part in shards for job in part]
        # Exhaustive and order-preserving ...
        assert flat == jobs
        # ... and disjoint (no job appears in two shards).
        labels = [job.label() for job in flat]
        assert len(labels) == len(set(labels))

    def test_sizes_balanced(self):
        shards = shard(list(range(10)), 4)
        assert [len(s) for s in shards] == [3, 3, 2, 2]


@pytest.fixture(scope="module")
def batch_env(tmp_path_factory):
    """Shared trace cache + sweep for the batch tests (tiny preset)."""
    cache = tmp_path_factory.mktemp("batch-traces")
    sweep = expand_grid(
        ["lu"], kinds=("base", "ssbr", "ds"), models=("RC",),
        windows=(16,), procs=4, preset="tiny",
    )
    # Pre-generate the shared trace so per-test timings stay honest.
    TraceStore(n_procs=4, preset="tiny", cache_dir=cache).get("lu")
    return cache, sweep


class TestRunBatch:
    def test_clean_batch_completes(self, tmp_path, batch_env):
        cache, sweep = batch_env
        report = run_batch(
            sweep, jobs=2, cache_dir=cache, out_dir=tmp_path / "out"
        )
        assert not report.partial
        assert len(report.completed) == 3
        assert all(r.source == "computed" for r in report.records)
        assert (report.out_dir / "state.json").is_file()
        assert (report.out_dir / "manifest.json").is_file()

    def test_rerun_served_entirely_from_store(self, tmp_path, batch_env):
        cache, sweep = batch_env
        out = tmp_path / "out"
        first = run_batch(sweep, jobs=2, cache_dir=cache, out_dir=out)
        again = run_batch(sweep, jobs=2, cache_dir=cache, out_dir=out)
        assert again.batch_id == first.batch_id
        assert all(r.source == "store" for r in again.records)
        assert not again.partial
        # Store-served jobs start and finish at acceptance: zero run
        # time, but the queue-latency fields are still populated.
        for record in again.records:
            assert record.started_at == record.finished_at
            assert record.queue_latency is not None

    def test_state_json_records_queue_timestamps(
        self, tmp_path, batch_env
    ):
        import json

        from repro.service import format_status

        cache, sweep = batch_env
        report = run_batch(
            sweep, jobs=2, cache_dir=cache, out_dir=tmp_path / "out"
        )
        state = json.loads(
            (report.out_dir / "state.json").read_text()
        )
        for job in state["jobs"]:
            assert job["queued_at"] is not None
            assert job["started_at"] >= job["queued_at"]
            assert job["finished_at"] >= job["started_at"]
        # status renders real wait/run figures from the timestamps.
        rendered = format_status(state)
        assert "wait " in rendered and "run " in rendered
        for record in report.records:
            assert record.queue_latency >= 0.0
            assert record.run_seconds >= 0.0

    def test_chaos_batch_degrades_gracefully(self, tmp_path, batch_env):
        cache, sweep = batch_env
        report = run_batch(
            sweep, jobs=2, cache_dir=cache, out_dir=tmp_path / "out",
            max_attempts=2, chaos=ChaosSpec(fail={0: ALWAYS}),
        )
        assert report.partial
        assert len(report.failed) == 1
        assert len(report.completed) == 2
        failure = report.failure_report()
        assert len(failure["failed"]) == 1
        history = failure["failed"][0]["history"]
        assert [h["attempt"] for h in history] == [1, 2]
        assert all(h["reason"] == "error" for h in history)
        assert "FAILED" in report.format_summary()

    def test_retried_batch_bytes_match_clean_run(
        self, tmp_path, batch_env
    ):
        """Acceptance: with a crash injected and retried, every
        successful job's stored bytes equal the uninjected run's."""
        cache, sweep = batch_env
        clean = run_batch(
            sweep, jobs=2, cache_dir=cache, out_dir=tmp_path / "clean"
        )
        faulted = run_batch(
            sweep, jobs=2, cache_dir=cache, out_dir=tmp_path / "faulted",
            max_attempts=3, chaos=ChaosSpec(crash={1: 1}),
        )
        assert not faulted.partial
        clean_store = ResultStore(clean.store_dir)
        faulted_store = ResultStore(faulted.store_dir)
        for record in clean.records:
            assert (
                faulted_store.get_bytes(record.key)
                == clean_store.get_bytes(record.key)
            )


class TestTraceStoreCorruption:
    def test_truncated_cache_regenerates_silently(self, tmp_path):
        store = TraceStore(n_procs=4, preset="tiny", cache_dir=tmp_path)
        run = store.get("lu")
        cached = store._cache_path("lu")
        assert cached.is_file()
        # Truncate the pickle mid-file: a torn write / partial copy.
        raw = cached.read_bytes()
        cached.write_bytes(raw[: len(raw) // 3])
        fresh = TraceStore(n_procs=4, preset="tiny", cache_dir=tmp_path)
        regen = fresh.get("lu")
        assert regen.base.total == run.base.total
        assert len(regen.trace) == len(run.trace)
        # The regenerated pickle is valid again for the next reader.
        third = TraceStore(n_procs=4, preset="tiny", cache_dir=tmp_path)
        assert third.get("lu").base.total == run.base.total


class TestSignalShutdown:
    def test_sigint_cancels_within_grace(self, tmp_path):
        """SIGINT against a wedged batch: pending jobs cancelled, hung
        workers killed within the grace budget, exit code 130."""
        cmd = [
            sys.executable, "-m", "repro",
            "--preset", "tiny", "--procs", "4",
            "--cache-dir", str(tmp_path / "traces"),
            "batch", "--apps", "lu", "--kinds", "base", "ssbr", "ds",
            "--jobs", "2", "--out", str(tmp_path / "out"),
            "--chaos-hang", "0", "1", "2",
        ]
        repo_src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(repo_src))
        proc = subprocess.Popen(
            cmd, env=env, start_new_session=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            time.sleep(4.0)  # let the workers start and wedge
            t0 = time.monotonic()
            os.killpg(proc.pid, signal.SIGINT)
            out, _ = proc.communicate(timeout=30)
            elapsed = time.monotonic() - t0
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
        assert proc.returncode == 130, out.decode()
        assert elapsed < 10.0  # grace is 5s; teardown is bounded
        assert b"interrupted" in out
