"""Differential and determinism tests for the fast paths.

The compiled-dispatch interpreter and the process-pool experiment
fan-out are pure performance work: both must reproduce the reference
results exactly — trace for trace, counter for counter, byte for byte.
"""

from __future__ import annotations

import pytest

from repro import MultiprocessorConfig, TangoExecutor, build_app
from repro.apps import APP_NAMES
from repro.cli import main
from repro.experiments import (
    TraceStore,
    figure3_configs,
    generate_traces,
    simulate_app_models,
)
from repro.cpu import ProcessorConfig, simulate
from repro.net import build_network
from repro.obs import ChromeTracer, MetricsRegistry, Probe
from repro.tango.trace import TRACE_FORMAT_VERSION
from repro.verify import ExecutionRecorder


def _run(app: str, compiled: bool, network: str = "ideal", probe=None):
    workload = build_app(app, preset="tiny")
    config = MultiprocessorConfig(trace_cpus=(0, 1), network=network)
    result = TangoExecutor(
        workload.programs, config, memory=workload.memory,
        compiled=compiled, probe=probe,
    ).run()
    workload.verify(result.memory)
    return result


class TestCompiledDispatch:
    """The threaded-code engine is an exact drop-in for the reference."""

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_traces_and_stats_match_reference(self, app):
        fast = _run(app, compiled=True)
        ref = _run(app, compiled=False)
        assert fast.stats == ref.stats
        for cpu in (0, 1):
            assert fast.trace(cpu) == ref.trace(cpu)


class TestRecordedCompiledDispatch:
    """Recording must not perturb the fast path — and both engines must
    emit the *identical* global event log, coherence stream included."""

    @staticmethod
    def _record(app: str, compiled: bool):
        workload = build_app(app, preset="tiny")
        recorder = ExecutionRecorder()
        config = MultiprocessorConfig(trace_cpus=())
        result = TangoExecutor(
            workload.programs, config, memory=workload.memory,
            compiled=compiled, recorder=recorder,
        ).run()
        workload.verify(result.memory)
        return result, recorder.log()

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_compiled_log_matches_reference(self, app):
        fast_result, fast_log = self._record(app, compiled=True)
        ref_result, ref_log = self._record(app, compiled=False)
        assert fast_result.stats == ref_result.stats
        assert fast_log.n_threads == ref_log.n_threads
        assert len(fast_log) == len(ref_log) > 0
        assert fast_log.events == ref_log.events
        assert fast_log.coherence == ref_log.coherence
        assert fast_log.audit_violations == []
        assert ref_log.audit_violations == []

    def test_recording_does_not_change_unrecorded_results(self):
        recorded, _ = self._record("lu", compiled=True)
        bare = _run("lu", compiled=True)
        assert recorded.stats == bare.stats


class TestParallelFanOut:
    """`--jobs N` changes wall time only, never results."""

    @pytest.fixture()
    def cache_dir(self, tmp_path):
        return tmp_path / "traces"

    def test_parallel_generation_matches_serial(self, cache_dir):
        parallel = TraceStore(preset="tiny", cache_dir=cache_dir)
        runs_par = generate_traces(parallel, jobs=2)
        serial = TraceStore(preset="tiny", cache_dir=None)
        runs_ser = generate_traces(serial, jobs=1)
        for par, ser in zip(runs_par, runs_ser):
            assert par.app == ser.app
            assert par.trace == ser.trace
            assert par.stats == ser.stats
            assert par.base == ser.base

    def test_parallel_sims_match_serial(self, cache_dir):
        store = TraceStore(preset="tiny", cache_dir=cache_dir)
        configs = figure3_configs()
        par = simulate_app_models(store, configs, jobs=2)
        ser = simulate_app_models(store, configs, jobs=1)
        assert list(par) == list(ser)
        assert par == ser
        # Single-app fan-out chunks the config list instead.
        one_par = simulate_app_models(
            store, configs, apps=("lu",), jobs=3
        )
        one_ser = simulate_app_models(
            store, configs, apps=("lu",), jobs=1
        )
        assert one_par == one_ser

    def test_cli_jobs_output_identical(self, cache_dir, capsys):
        argv = ["--preset", "tiny", "--cache-dir", str(cache_dir)]
        main(argv + ["figure3", "--jobs", "2"])
        first = capsys.readouterr().out
        main(argv + ["figure3", "--jobs", "2"])
        second = capsys.readouterr().out
        main(argv + ["figure3"])
        serial = capsys.readouterr().out
        assert first == second == serial


class TestProbeByteIdentity:
    """An attached `repro.obs.Probe` only observes — every simulated
    result must be byte-identical with instrumentation on or off."""

    @staticmethod
    def _probe():
        return Probe(metrics=MetricsRegistry(), tracer=ChromeTracer())

    @pytest.mark.parametrize("network", ("ideal", "mesh"))
    def test_executor_results_unchanged(self, network):
        probe = self._probe()
        instrumented = _run("lu", compiled=True, network=network,
                            probe=probe)
        bare = _run("lu", compiled=True, network=network)
        assert instrumented.stats == bare.stats
        for cpu in (0, 1):
            assert instrumented.trace(cpu) == bare.trace(cpu)
        # ... and the probe actually saw the run.
        assert probe.metrics.counter("cache.total.reads").value > 0
        assert len(probe.tracer) > 0

    @pytest.mark.parametrize("network", ("ideal", "mesh"))
    @pytest.mark.parametrize("kind", ("base", "ssbr", "ss", "ds"))
    def test_model_breakdowns_unchanged(self, kind, network):
        trace = _run("lu", compiled=True).trace(0)
        config = ProcessorConfig(kind=kind, model="RC", window=64)

        def breakdown(probe):
            net = build_network(network, 8, 16)
            return simulate(trace, config, network=net, probe=probe)

        assert breakdown(self._probe()) == breakdown(None)


class TestCacheVersioning:
    """Trace pickles carry their schema + simulation parameters."""

    def test_key_covers_all_parameters(self, tmp_path):
        base = TraceStore(preset="tiny", cache_dir=tmp_path)
        assert f"_v{TRACE_FORMAT_VERSION}_" in base._cache_path("lu").name
        variants = [
            TraceStore(preset="tiny", cache_dir=tmp_path, line_size=32),
            TraceStore(preset="tiny", cache_dir=tmp_path,
                       sync_access_latency=25),
            TraceStore(preset="tiny", cache_dir=tmp_path, miss_penalty=100),
            TraceStore(preset="tiny", cache_dir=tmp_path,
                       cache_size=128 * 1024),
            TraceStore(preset="default", cache_dir=tmp_path),
            TraceStore(preset="tiny", cache_dir=tmp_path, n_procs=8),
            TraceStore(preset="tiny", cache_dir=tmp_path, trace_cpu=1),
        ]
        paths = {s._cache_path("lu") for s in [base, *variants]}
        assert len(paths) == len(variants) + 1

    def test_corrupt_pickle_regenerates(self, tmp_path):
        store = TraceStore(preset="tiny", cache_dir=tmp_path)
        run = store.get("lu")
        path = store._cache_path("lu")
        path.write_bytes(b"not a pickle")
        fresh = TraceStore(preset="tiny", cache_dir=tmp_path)
        reloaded = fresh.get("lu")
        assert reloaded.trace == run.trace
        # The bad file was replaced with a good one.
        third = TraceStore(preset="tiny", cache_dir=tmp_path)
        assert third.get("lu").trace == run.trace
