"""Differential and determinism tests for the fast paths.

The compiled-dispatch interpreter and the process-pool experiment
fan-out are pure performance work: both must reproduce the reference
results exactly — trace for trace, counter for counter, byte for byte.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from trace_helpers import TraceBuilder

from repro import MultiprocessorConfig, TangoExecutor, build_app
from repro.apps import APP_NAMES
from repro.cli import main
from repro.consistency import get_model
from repro.experiments import (
    TraceStore,
    figure3_configs,
    generate_traces,
    simulate_app_models,
)
from repro.cpu import (
    ProcessorConfig,
    simulate,
    simulate_base,
    simulate_base_fast,
    simulate_ds,
    simulate_ds_fast,
    simulate_ss,
    simulate_ss_fast,
    simulate_ssbr,
    simulate_ssbr_fast,
)
from repro.cpu.ds import DSConfig
from repro.net import build_network
from repro.obs import ChromeTracer, MetricsRegistry, Probe
from repro.tango.trace import TRACE_FORMAT_VERSION
from repro.verify import ExecutionRecorder

MODELS = ("SC", "PC", "WO", "RC")


def _run(app: str, compiled: bool, network: str = "ideal", probe=None):
    workload = build_app(app, preset="tiny")
    config = MultiprocessorConfig(trace_cpus=(0, 1), network=network)
    result = TangoExecutor(
        workload.programs, config, memory=workload.memory,
        compiled=compiled, probe=probe,
    ).run()
    workload.verify(result.memory)
    return result


class TestCompiledDispatch:
    """The threaded-code engine is an exact drop-in for the reference."""

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_traces_and_stats_match_reference(self, app):
        fast = _run(app, compiled=True)
        ref = _run(app, compiled=False)
        assert fast.stats == ref.stats
        for cpu in (0, 1):
            assert fast.trace(cpu) == ref.trace(cpu)


class TestRecordedCompiledDispatch:
    """Recording must not perturb the fast path — and both engines must
    emit the *identical* global event log, coherence stream included."""

    @staticmethod
    def _record(app: str, compiled: bool):
        workload = build_app(app, preset="tiny")
        recorder = ExecutionRecorder()
        config = MultiprocessorConfig(trace_cpus=())
        result = TangoExecutor(
            workload.programs, config, memory=workload.memory,
            compiled=compiled, recorder=recorder,
        ).run()
        workload.verify(result.memory)
        return result, recorder.log()

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_compiled_log_matches_reference(self, app):
        fast_result, fast_log = self._record(app, compiled=True)
        ref_result, ref_log = self._record(app, compiled=False)
        assert fast_result.stats == ref_result.stats
        assert fast_log.n_threads == ref_log.n_threads
        assert len(fast_log) == len(ref_log) > 0
        assert fast_log.events == ref_log.events
        assert fast_log.coherence == ref_log.coherence
        assert fast_log.audit_violations == []
        assert ref_log.audit_violations == []

    def test_recording_does_not_change_unrecorded_results(self):
        recorded, _ = self._record("lu", compiled=True)
        bare = _run("lu", compiled=True)
        assert recorded.stats == bare.stats


class TestParallelFanOut:
    """`--jobs N` changes wall time only, never results."""

    @pytest.fixture()
    def cache_dir(self, tmp_path):
        return tmp_path / "traces"

    def test_parallel_generation_matches_serial(self, cache_dir):
        parallel = TraceStore(preset="tiny", cache_dir=cache_dir)
        runs_par = generate_traces(parallel, jobs=2)
        serial = TraceStore(preset="tiny", cache_dir=None)
        runs_ser = generate_traces(serial, jobs=1)
        for par, ser in zip(runs_par, runs_ser):
            assert par.app == ser.app
            assert par.trace == ser.trace
            assert par.stats == ser.stats
            assert par.base == ser.base

    def test_parallel_sims_match_serial(self, cache_dir):
        store = TraceStore(preset="tiny", cache_dir=cache_dir)
        configs = figure3_configs()
        par = simulate_app_models(store, configs, jobs=2)
        ser = simulate_app_models(store, configs, jobs=1)
        assert list(par) == list(ser)
        assert par == ser
        # Single-app fan-out chunks the config list instead.
        one_par = simulate_app_models(
            store, configs, apps=("lu",), jobs=3
        )
        one_ser = simulate_app_models(
            store, configs, apps=("lu",), jobs=1
        )
        assert one_par == one_ser

    def test_cli_jobs_output_identical(self, cache_dir, capsys):
        argv = ["--preset", "tiny", "--cache-dir", str(cache_dir)]
        main(argv + ["figure3", "--jobs", "2"])
        first = capsys.readouterr().out
        main(argv + ["figure3", "--jobs", "2"])
        second = capsys.readouterr().out
        main(argv + ["figure3"])
        serial = capsys.readouterr().out
        assert first == second == serial


class TestProbeByteIdentity:
    """An attached `repro.obs.Probe` only observes — every simulated
    result must be byte-identical with instrumentation on or off."""

    @staticmethod
    def _probe():
        return Probe(metrics=MetricsRegistry(), tracer=ChromeTracer())

    @pytest.mark.parametrize("network", ("ideal", "mesh"))
    def test_executor_results_unchanged(self, network):
        probe = self._probe()
        instrumented = _run("lu", compiled=True, network=network,
                            probe=probe)
        bare = _run("lu", compiled=True, network=network)
        assert instrumented.stats == bare.stats
        for cpu in (0, 1):
            assert instrumented.trace(cpu) == bare.trace(cpu)
        # ... and the probe actually saw the run.
        assert probe.metrics.counter("cache.total.reads").value > 0
        assert len(probe.tracer) > 0

    @pytest.mark.parametrize("network", ("ideal", "mesh"))
    @pytest.mark.parametrize("kind", ("base", "ssbr", "ss", "ds"))
    def test_model_breakdowns_unchanged(self, kind, network):
        trace = _run("lu", compiled=True).trace(0)
        config = ProcessorConfig(kind=kind, model="RC", window=64)

        def breakdown(probe):
            net = build_network(network, 8, 16)
            return simulate(trace, config, network=net, probe=probe)

        assert breakdown(self._probe()) == breakdown(None)


@pytest.fixture(scope="module")
def lu_trace():
    """One real tiny-preset trace, shared by the differential tests."""
    return _run("lu", compiled=True).trace(0)


class TestStaticFastEngines:
    """`static_fast` batch kernels vs. the scalar BASE/SSBR/SS models."""

    def test_base_matches_scalar(self, lu_trace):
        assert simulate_base_fast(lu_trace) == simulate_base(lu_trace)

    @pytest.mark.parametrize("model_name", MODELS)
    @pytest.mark.parametrize("network", ("ideal", "mesh"))
    def test_ssbr_ss_match_scalar(self, lu_trace, model_name, network):
        model = get_model(model_name)

        def net():
            return (None if network == "ideal"
                    else build_network("mesh", 16, 16))

        assert (simulate_ssbr_fast(lu_trace, model, network=net())
                == simulate_ssbr(lu_trace, model, network=net()))
        assert (simulate_ss_fast(lu_trace, model, network=net())
                == simulate_ss(lu_trace, model, network=net()))


class TestDSEventEngine:
    """The event-driven DS engine vs. the per-cycle scalar oracle."""

    @pytest.mark.parametrize("model_name", MODELS)
    @pytest.mark.parametrize("network", ("ideal", "mesh"))
    def test_matches_scalar_oracle(self, lu_trace, model_name, network):
        model = get_model(model_name)
        for kw in (
            dict(window=16),
            dict(window=64),
            dict(window=256),
            dict(window=64, prefetch=True),
            dict(window=64, speculative_loads=True),
            dict(window=64, perfect_branch_prediction=True),
            dict(window=64, ignore_data_dependences=True),
            dict(window=32, issue_width=4),
            dict(window=64, store_buffer_depth=4),
        ):
            def net():
                return (None if network == "ideal"
                        else build_network("mesh", 16, 16))

            ref = simulate_ds(lu_trace, model, DSConfig(network=net(), **kw))
            fast = simulate_ds_fast(
                lu_trace, model, DSConfig(network=net(), **kw)
            )
            assert fast == ref, kw

    @pytest.mark.parametrize("network", ("ideal", "mesh"))
    def test_probe_stream_matches_scalar(self, lu_trace, network):
        """Instrumented runs agree on everything the probe records:
        occupancy histograms, retire spans (deferred without a network,
        interleaved with miss spans behind one), and the breakdown."""
        model = get_model("RC")

        def run(fn):
            net = (None if network == "ideal"
                   else build_network("mesh", 16, 16))
            probe = Probe(metrics=MetricsRegistry(), tracer=ChromeTracer())
            if net is not None:
                net.attach_probe(probe)
            breakdown = fn(
                lu_trace, model, DSConfig(window=64, network=net),
                probe=probe,
            )
            return breakdown, probe

        ref_bd, ref_probe = run(simulate_ds)
        fast_bd, fast_probe = run(simulate_ds_fast)
        assert fast_bd == ref_bd
        assert (fast_probe.metrics.snapshot()
                == ref_probe.metrics.snapshot())
        assert fast_probe.tracer.events == ref_probe.tracer.events
        assert fast_probe.span_budget == ref_probe.span_budget


class TestEngineSelection:
    """`ProcessorConfig.engine` / the CLI's global `--engine` flag."""

    @pytest.mark.parametrize("kind", ("base", "ssbr", "ss", "ds"))
    def test_reference_engine_equivalent(self, lu_trace, kind):
        fast = ProcessorConfig(kind=kind, model="WO", window=64,
                               engine="fast")
        ref = ProcessorConfig(kind=kind, model="WO", window=64,
                              engine="reference")
        assert simulate(lu_trace, fast) == simulate(lu_trace, ref)

    def test_unknown_engine_rejected(self, lu_trace):
        config = ProcessorConfig(engine="warp")
        with pytest.raises(ValueError, match="engine"):
            simulate(lu_trace, config)

    def test_default_engine_switch_retargets_new_configs(self, monkeypatch):
        from repro import cpu

        assert ProcessorConfig().engine == "fast"
        monkeypatch.setattr(cpu, "DEFAULT_ENGINE", "reference")
        assert ProcessorConfig().engine == "reference"


@st.composite
def small_traces(draw):
    """Random short traces mixing every memory class and sync episodes."""
    tb = TraceBuilder()
    regs = st.integers(-1, 5)
    stalls = st.sampled_from((0, 0, 0, 1, 5, 18, 50))
    addrs = st.builds(lambda k: 0x1000 + 16 * k, st.integers(0, 7))
    n = draw(st.integers(1, 30))
    for _ in range(n):
        kind = draw(st.sampled_from((
            "alu", "alu", "fp", "load", "load", "store", "branch",
            "acquire", "release", "barrier",
        )))
        if kind == "alu":
            tb.alu(rd=draw(regs), rs1=draw(regs), rs2=draw(regs))
        elif kind == "fp":
            tb.fp(rd=draw(regs), rs1=draw(regs), rs2=draw(regs))
        elif kind == "load":
            tb.load(rd=draw(regs), rs1=draw(regs), addr=draw(addrs),
                    stall=draw(stalls))
        elif kind == "store":
            tb.store(rs2=draw(regs), rs1=draw(regs), addr=draw(addrs),
                     stall=draw(stalls))
        elif kind == "branch":
            tb.branch(taken=draw(st.booleans()), rs1=draw(regs),
                      rs2=draw(regs))
        elif kind == "acquire":
            tb.acquire(addr=draw(addrs), stall=draw(stalls),
                       wait=draw(st.sampled_from((0, 0, 2, 9))))
        elif kind == "release":
            tb.release(addr=draw(addrs), stall=draw(stalls))
        else:
            tb.barrier(addr=draw(addrs), stall=draw(stalls),
                       wait=draw(st.sampled_from((0, 0, 4))))
    return tb.build()


class TestFastpathFuzz:
    """Property-based differential: on arbitrary small traces, every
    fast engine must agree with its scalar oracle, for every model."""

    @given(trace=small_traces())
    @settings(max_examples=60, deadline=None)
    def test_all_models_match_scalar(self, trace):
        assert simulate_base_fast(trace) == simulate_base(trace)
        for name in MODELS:
            model = get_model(name)
            assert (simulate_ssbr_fast(trace, model)
                    == simulate_ssbr(trace, model))
            assert (simulate_ss_fast(trace, model)
                    == simulate_ss(trace, model))
            for kw in (
                dict(window=4),
                dict(window=16, issue_width=2),
                dict(window=8, store_buffer_depth=2),
            ):
                fast = simulate_ds_fast(trace, model, DSConfig(**kw))
                ref = simulate_ds(trace, model, DSConfig(**kw))
                assert fast == ref, (name, kw)


class TestTraceRoundTrip:
    """Trace pickling is byte-stable and the zero-copy views survive."""

    def test_pickle_round_trip_byte_identity(self, lu_trace):
        blob = pickle.dumps(lu_trace, protocol=pickle.HIGHEST_PROTOCOL)
        clone = pickle.loads(blob)
        assert clone == lu_trace
        reblob = pickle.dumps(clone, protocol=pickle.HIGHEST_PROTOCOL)
        assert reblob == blob
        for ours, theirs in zip(lu_trace.np_columns(), clone.np_columns()):
            assert ours.dtype == theirs.dtype
            assert np.array_equal(ours, theirs)

    def test_fastpath_cache_never_pickled(self, lu_trace):
        # Populate the derived-index cache, then make sure the pickle
        # neither carries it nor resurrects it.
        simulate_ds_fast(lu_trace, get_model("RC"), DSConfig(window=16))
        assert lu_trace.fastpath_cache is not None
        state = lu_trace.__getstate__()
        assert set(state) == {"version", "cpu", "columns"}
        clone = pickle.loads(pickle.dumps(lu_trace))
        assert clone.fastpath_cache is None


class TestCacheVersioning:
    """Trace pickles carry their schema + simulation parameters."""

    def test_key_covers_all_parameters(self, tmp_path):
        base = TraceStore(preset="tiny", cache_dir=tmp_path)
        assert f"_v{TRACE_FORMAT_VERSION}_" in base._cache_path("lu").name
        variants = [
            TraceStore(preset="tiny", cache_dir=tmp_path, line_size=32),
            TraceStore(preset="tiny", cache_dir=tmp_path,
                       sync_access_latency=25),
            TraceStore(preset="tiny", cache_dir=tmp_path, miss_penalty=100),
            TraceStore(preset="tiny", cache_dir=tmp_path,
                       cache_size=128 * 1024),
            TraceStore(preset="default", cache_dir=tmp_path),
            TraceStore(preset="tiny", cache_dir=tmp_path, n_procs=8),
            TraceStore(preset="tiny", cache_dir=tmp_path, trace_cpu=1),
        ]
        paths = {s._cache_path("lu") for s in [base, *variants]}
        assert len(paths) == len(variants) + 1

    def test_corrupt_pickle_regenerates(self, tmp_path):
        store = TraceStore(preset="tiny", cache_dir=tmp_path)
        run = store.get("lu")
        path = store._cache_path("lu")
        path.write_bytes(b"not a pickle")
        fresh = TraceStore(preset="tiny", cache_dir=tmp_path)
        reloaded = fresh.get("lu")
        assert reloaded.trace == run.trace
        # The bad file was replaced with a good one.
        third = TraceStore(preset="tiny", cache_dir=tmp_path)
        assert third.get("lu").trace == run.trace
