"""Shared fixtures: tiny workloads, executed runs, synthetic traces."""

from __future__ import annotations

import pytest

from repro import MultiprocessorConfig, TangoExecutor, build_app
from repro.apps import APP_NAMES


@pytest.fixture(scope="session")
def tiny_runs():
    """Run every application at the tiny preset once per session.

    Returns {app: (workload, RunResult)} with functional verification
    already performed.
    """
    runs = {}
    for app in APP_NAMES:
        workload = build_app(app, preset="tiny")
        config = MultiprocessorConfig(trace_cpus=(0, 1))
        result = TangoExecutor(
            workload.programs, config, memory=workload.memory
        ).run()
        workload.verify(result.memory)
        runs[app] = (workload, result)
    return runs


@pytest.fixture(scope="session")
def tiny_traces(tiny_runs):
    """{app: cpu-0 trace} for the tiny runs."""
    return {app: result.trace(0) for app, (_, result) in tiny_runs.items()}
