"""Tests for the dynamically scheduled processor on hand-crafted traces."""

import pytest

from repro.consistency import PC, RC, SC
from repro.cpu import simulate_base
from repro.cpu.ds import DSConfig, DSProcessor

from trace_helpers import TraceBuilder, alu_block


def ds(trace, model=RC, **cfg):
    return DSProcessor(trace, model, DSConfig(**cfg)).run()


class TestPipelineBasics:
    def test_pure_compute_is_one_per_cycle(self):
        tb = TraceBuilder()
        alu_block(tb, 20)
        r = ds(tb.build(), window=16)
        assert r.busy == 20
        assert r.total <= 22  # pipeline fill slack only

    def test_attribution_sums_to_total(self):
        tb = TraceBuilder()
        for i in range(8):
            tb.load(rd=5, stall=50, addr=0x1000 + i * 16)
            tb.alu(rd=6, rs1=5)
            tb.store(rs2=6, stall=50, addr=0x2000 + i * 16)
            tb.acquire(stall=50, wait=10)
            tb.release(stall=50)
            alu_block(tb, 4)
        for model in (SC, PC, RC):
            for window in (16, 64):
                r = ds(tb.build(), model, window=window)
                assert r.total == (
                    r.busy + r.sync + r.read + r.write + r.other
                )
                assert r.busy == r.instructions

    def test_dependence_chain_serializes(self):
        tb = TraceBuilder()
        tb.alu(rd=1)
        for _ in range(10):
            tb.alu(rd=1, rs1=1)
        r = ds(tb.build(), window=64)
        # Each instruction depends on the previous: ~1 cycle each anyway
        # at single issue; just verify it completes with sane total.
        assert 11 <= r.total <= 15


class TestReadOverlap:
    def test_independent_misses_overlap_under_rc(self):
        tb = TraceBuilder()
        for i in range(8):
            tb.load(rd=-1, stall=50, addr=0x1000 + 64 * i)
        r = ds(tb.build(), RC, window=64)
        base = simulate_base(tb.build())
        # BASE pays 8x50; the DS pays roughly one memory latency since
        # all eight issue back to back through the single port.
        assert base.read == 400
        assert r.total < 100

    def test_sc_serializes_misses(self):
        tb = TraceBuilder()
        for i in range(8):
            tb.load(rd=-1, stall=50, addr=0x1000 + 64 * i)
        r = ds(tb.build(), SC, window=64)
        base = simulate_base(tb.build())
        assert r.total >= base.total - 10

    def test_pc_serializes_reads_too(self):
        tb = TraceBuilder()
        for i in range(8):
            tb.load(rd=-1, stall=50, addr=0x1000 + 64 * i)
        rc = ds(tb.build(), RC, window=64)
        pc = ds(tb.build(), PC, window=64)
        assert pc.total > 3 * rc.total

    def test_window_must_cover_latency(self):
        # One miss every 10 instructions: window 16 can only slide ~16
        # instructions ahead, window 64 covers the 50-cycle latency.
        tb = TraceBuilder()
        for i in range(20):
            tb.load(rd=-1, stall=50, addr=0x1000 + 64 * i)
            alu_block(tb, 9)
        small = ds(tb.build(), RC, window=16)
        large = ds(tb.build(), RC, window=64)
        assert large.read < small.read
        assert large.total < small.total

    def test_window_monotonicity(self):
        tb = TraceBuilder()
        for i in range(30):
            tb.load(rd=5, stall=50 if i % 3 == 0 else 0,
                    addr=0x1000 + 64 * i)
            tb.alu(rd=6, rs1=5)
            alu_block(tb, 6)
        totals = [
            ds(tb.build(), RC, window=w).total
            for w in (16, 32, 64, 128, 256)
        ]
        for a, b in zip(totals, totals[1:]):
            assert b <= a + 2

    def test_dependent_misses_cannot_overlap(self):
        # Load feeding the next load's address: a pointer chase.
        tb = TraceBuilder()
        tb.load(rd=1, stall=50, addr=0x1000)
        for i in range(4):
            tb.load(rd=1, rs1=1, stall=50, addr=0x2000 + 64 * i)
        chain = ds(tb.build(), RC, window=64)
        tb2 = TraceBuilder()
        tb2.load(rd=1, stall=50, addr=0x1000)
        for i in range(4):
            tb2.load(rd=2, stall=50, addr=0x2000 + 64 * i)
        indep = ds(tb2.build(), RC, window=64)
        assert chain.total > 4 * 50
        assert indep.total < 2 * 50 + 20

    def test_ignore_deps_breaks_chains(self):
        tb = TraceBuilder()
        tb.load(rd=1, stall=50, addr=0x1000)
        for i in range(4):
            tb.load(rd=1, rs1=1, stall=50, addr=0x2000 + 64 * i)
        normal = ds(tb.build(), RC, window=64)
        nodep = ds(tb.build(), RC, window=64, ignore_data_dependences=True)
        assert nodep.total < normal.total / 2


class TestStores:
    def test_store_latency_hidden_under_rc(self):
        tb = TraceBuilder()
        for i in range(10):
            tb.store(stall=50, addr=0x1000 + 64 * i)
            alu_block(tb, 3)
        r = ds(tb.build(), RC, window=64)
        assert r.write <= 55  # only the final drain is exposed

    def test_store_buffer_full_stalls_under_pc(self):
        tb = TraceBuilder()
        for i in range(40):
            tb.store(stall=50, addr=0x1000 + 64 * i)
        pc = ds(tb.build(), PC, window=16, store_buffer_depth=4)
        rc = ds(tb.build(), RC, window=16, store_buffer_depth=4)
        assert pc.total > rc.total

    def test_store_to_load_forwarding(self):
        tb = TraceBuilder()
        tb.store(stall=50, addr=0x1000)
        tb.load(rd=5, stall=50, addr=0x1000)   # forwarded
        tb.alu(rd=6, rs1=5)
        r = ds(tb.build(), RC, window=16)
        assert r.read <= 2


class TestSynchronizationSemantics:
    def test_acquire_gates_following_reads_under_rc(self):
        tb = TraceBuilder()
        tb.acquire(stall=50, wait=0)
        tb.load(rd=-1, stall=50, addr=0x1000)
        r = ds(tb.build(), RC, window=16)
        # Serialized: ~50 (acquire) + 50 (read)
        assert r.total >= 100

    def test_release_does_not_gate_following_reads_under_rc(self):
        tb = TraceBuilder()
        tb.release(stall=50)
        tb.load(rd=-1, stall=50, addr=0x1000)
        r = ds(tb.build(), RC, window=16)
        assert r.total < 100

    def test_contention_wait_is_not_hidden(self):
        # A long acquire wait cannot be overlapped even with plenty of
        # preceding independent work.
        tb = TraceBuilder()
        alu_block(tb, 100)
        tb.acquire(stall=50, wait=500)
        r = ds(tb.build(), RC, window=256)
        assert r.total >= 100 + 500
        assert r.sync >= 500

    def test_free_lock_access_latency_is_hideable(self):
        # wait == 0: the acquire's 50-cycle access can overlap prior work.
        tb = TraceBuilder()
        for _ in range(3):
            alu_block(tb, 60)
            tb.acquire(stall=50, wait=0)
        r = ds(tb.build(), RC, window=256)
        base = simulate_base(tb.build())
        assert r.sync < base.sync


class TestBranches:
    def _loop_trace(self, iterations=50, body=6):
        """A simple loop: body ALUs then a taken back-branch, with a
        final not-taken exit."""
        tb = TraceBuilder()
        for it in range(iterations):
            for i in range(body):
                tb.trace.append(
                    __import__("repro.tango", fromlist=["TraceRecord"])
                    .TraceRecord(
                        op=__import__("repro.isa", fromlist=["Op"]).Op.ADD,
                        pc=i, next_pc=i + 1,
                    )
                )
            taken = it < iterations - 1
            from repro.isa import Op
            from repro.tango import TraceRecord
            tb.trace.append(TraceRecord(
                op=Op.BNE, pc=body, next_pc=0 if taken else body + 1,
            ))
        return tb.build()

    def test_predictable_loop_branches_cost_little(self):
        trace = self._loop_trace()
        normal = ds(trace, RC, window=64)
        perfect = ds(trace, RC, window=64, perfect_branch_prediction=True)
        # After BTB warmup the loop branch predicts correctly.
        assert normal.total <= perfect.total * 1.2

    def test_mispredictions_stall_fetch(self):
        # Alternating taken/not-taken branch at the same pc with a load
        # after it: misprediction limits lookahead.
        from repro.isa import Op
        from repro.tango import TraceRecord
        tb = TraceBuilder()
        for i in range(30):
            tb.trace.append(TraceRecord(
                op=Op.BNE, pc=0, next_pc=1 if i % 2 else 2,
            ))
            tb.trace.append(TraceRecord(
                op=Op.LW, pc=1 if i % 2 else 2, next_pc=0,
                addr=0x1000 + 64 * i, stall=50,
                mem_class=__import__("repro.isa",
                                     fromlist=["MemClass"]).MemClass.READ,
            ))
        trace = tb.build()
        normal = ds(trace, RC, window=64)
        perfect = ds(trace, RC, window=64, perfect_branch_prediction=True)
        assert perfect.total < normal.total


class TestMultiIssue:
    def test_wider_issue_is_faster_on_ilp(self):
        tb = TraceBuilder()
        alu_block(tb, 200)
        one = ds(tb.build(), RC, window=64, issue_width=1)
        four = ds(tb.build(), RC, window=64, issue_width=4)
        assert four.total < one.total / 1.5

    def test_multi_issue_needs_bigger_window(self):
        # With 4-wide issue, the same window covers fewer cycles of
        # latency, so enlarging the window keeps helping past 64.
        tb = TraceBuilder()
        for i in range(40):
            tb.load(rd=-1, stall=50, addr=0x1000 + 64 * i)
            alu_block(tb, 12)
        w64 = ds(tb.build(), RC, window=64, issue_width=4)
        w128 = ds(tb.build(), RC, window=128, issue_width=4)
        assert w128.total <= w64.total


class TestInstrumentation:
    def test_miss_stats_collected(self):
        tb = TraceBuilder()
        tb.load(rd=1, stall=50, addr=0x1000)
        tb.load(rd=2, rs1=1, stall=50, addr=0x2000)
        alu_block(tb, 5)
        tb.load(rd=3, stall=50, addr=0x3000)
        proc = DSProcessor(
            tb.build(), RC,
            DSConfig(window=64, collect_miss_stats=True,
                     perfect_branch_prediction=True),
        )
        proc.run()
        assert len(proc.read_miss_issue_delays) == 3
        assert len(proc.read_miss_distances) == 2
        # The dependent second load issues much later than it decoded.
        assert max(proc.read_miss_issue_delays) >= 49


class TestCompaction:
    """Head-list compaction is pure memory management: any threshold
    must produce the identical breakdown (see `_compact`'s docstring)."""

    @staticmethod
    def _churny_trace():
        # Long enough to retire far more rows than a tiny floor, with
        # stores that linger in the buffer and misses that stall heads.
        tb = TraceBuilder()
        for i in range(120):
            tb.load(rd=1, stall=50 if i % 3 == 0 else 0,
                    addr=0x1000 + 16 * i)
            tb.store(rs2=1, stall=50 if i % 4 == 0 else 0,
                     addr=0x8000 + 16 * i)
            alu_block(tb, 2)
            if i % 20 == 19:
                tb.acquire(stall=50, wait=5)
                tb.release(stall=50)
        return tb.build()

    @pytest.mark.parametrize("floor", (0, 2, 10**9))
    def test_threshold_never_changes_results(self, floor, monkeypatch):
        from repro.cpu.ds import engine, event_engine
        from repro.cpu.ds.engine import simulate_ds
        from repro.cpu.ds.event_engine import simulate_ds_fast

        trace = self._churny_trace()
        baseline_scalar = simulate_ds(trace, RC, DSConfig(window=16))
        baseline_fast = simulate_ds_fast(trace, RC, DSConfig(window=16))
        assert baseline_scalar == baseline_fast
        monkeypatch.setattr(engine, "_COMPACT_FLOOR", floor)
        monkeypatch.setattr(event_engine, "_COMPACT_FLOOR", floor)
        for model in (SC, PC, RC):
            for kw in (dict(window=16), dict(window=64),
                       dict(window=16, store_buffer_depth=4)):
                scalar = simulate_ds(trace, model, DSConfig(**kw))
                fast = simulate_ds_fast(trace, model, DSConfig(**kw))
                assert scalar == fast, (floor, kw)
        assert simulate_ds(trace, RC, DSConfig(window=16)) == baseline_scalar
        assert (simulate_ds_fast(trace, RC, DSConfig(window=16))
                == baseline_fast)
