"""Window-size sweep: one application's Figure 3 + Figure 4 columns.

Sweeps the dynamically scheduled processor's reorder-buffer window under
release consistency — normally, with perfect branch prediction, and with
data dependences ignored — and prints the stacked execution-time bars,
reproducing the per-application story of the paper's Figures 3 and 4.

Run:  python examples/window_sweep.py [app] [miss_penalty]
e.g.  python examples/window_sweep.py pthor 100
"""

import sys

from repro import MultiprocessorConfig, TangoExecutor, build_app
from repro.cpu import ProcessorConfig, simulate
from repro.experiments import format_stacked_bars

WINDOWS = (16, 32, 64, 128, 256)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "mp3d"
    penalty = int(sys.argv[2]) if len(sys.argv) > 2 else 50

    print(
        f"Running {app.upper()} (miss penalty {penalty} cycles) on the "
        f"simulated multiprocessor..."
    )
    workload = build_app(app)
    result = TangoExecutor(
        workload.programs,
        MultiprocessorConfig(miss_penalty=penalty),
        memory=workload.memory,
    ).run()
    workload.verify(result.memory)
    trace = result.trace(0)
    print(f"Trace: {len(trace)} instructions. Simulating processors...\n")

    base = simulate(trace, ProcessorConfig(kind="base"))

    for title, extra in (
        ("DS under RC", {}),
        ("DS under RC, perfect branch prediction", {"perfect_bp": True}),
        ("DS under RC, perfect BP + ignored data dependences",
         {"perfect_bp": True, "ignore_deps": True}),
    ):
        runs = [base] + [
            simulate(
                trace,
                ProcessorConfig(kind="ds", model="RC", window=w, **extra),
            )
            for w in WINDOWS
        ]
        print(format_stacked_bars(f"{app.upper()} — {title}:", runs, base))
        print()

    w64 = simulate(
        trace, ProcessorConfig(kind="ds", model="RC", window=64)
    )
    print(
        f"Read latency hidden at window 64: "
        f"{w64.read_latency_hidden_vs(base):.0%}"
    )


if __name__ == "__main__":
    main()
