"""Quickstart: run one application through the full pipeline.

Builds the LU workload at a small size, executes it on the simulated
16-processor machine (verifying the numerical result against numpy),
then feeds the traced processor's instruction stream through the BASE
and dynamically scheduled processor models and prints the execution-time
breakdown — a single column of the paper's Figure 3.

Run:  python examples/quickstart.py
"""

from repro import MultiprocessorConfig, TangoExecutor, build_app
from repro.cpu import ProcessorConfig, simulate
from repro.experiments import format_breakdowns, format_stacked_bars


def main() -> None:
    print("Building LU (48x48 matrix, 16 processors)...")
    workload = build_app("lu", n=48)

    print("Running the multiprocessor simulation...")
    config = MultiprocessorConfig(miss_penalty=50)
    result = TangoExecutor(
        workload.programs, config, memory=workload.memory
    ).run()

    workload.verify(result.memory)
    print("Functional verification against numpy: OK")

    stats = result.stats.cpu(0)
    print(
        f"\nProcessor 0: {stats.busy_cycles} instructions, "
        f"{stats.read_misses} read misses, "
        f"{stats.write_misses} write misses, "
        f"{stats.wait_events} event waits"
    )

    trace = result.trace(0)
    runs = [simulate(trace, ProcessorConfig(kind="base"))]
    for window in (16, 64, 256):
        runs.append(
            simulate(
                trace,
                ProcessorConfig(kind="ds", model="RC", window=window),
            )
        )

    base = runs[0]
    print()
    print(format_breakdowns(
        "LU execution time (percent of BASE):", runs, base
    ))
    print()
    print(format_stacked_bars("", runs, base))
    hidden = runs[2].read_latency_hidden_vs(base)
    print(
        f"\nThe 64-entry window hides {hidden:.0%} of the read latency "
        f"a blocking processor would expose."
    )


if __name__ == "__main__":
    main()
