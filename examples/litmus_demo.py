"""Litmus tests and the axiomatic checker, end to end.

Part 1 runs the store-buffering (SB) litmus test under SC and then under
PC on the model-aware store-buffer engine: SC never produces the
forbidden (0, 0) outcome; PC produces it readily.  When it appears, the
same recorded execution is re-checked under SC and the happens-before
cycle — the proof that the outcome is genuinely non-SC — is printed.

Part 2 runs the message-passing (MP) test under RC, where out-of-order
write-buffer drains let the reader see the flag before the data.

Part 3 records one full application run on the Tango executor and checks
it against all four models: the executor performs accesses atomically in
virtual-time order, so every model must accept the log (the checker as a
regression oracle).

Run:  python examples/litmus_demo.py [app]
"""

import sys

from repro.verify import (
    ALL_MODELS,
    CATALOG,
    format_litmus_report,
    run_litmus,
    verify_app,
)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "lu"

    print("== Part 1: store buffering (SB), SC vs PC ==\n")
    test = CATALOG["sb"]
    print(f"{test.title}: outcome is {test.outcome}")
    results = [
        run_litmus(test, model, schedules=100, seed=0)
        for model in ("SC", "PC")
    ]
    print(format_litmus_report(results))

    print("\n== Part 2: message passing (MP) under RC ==\n")
    mp = run_litmus(CATALOG["mp"], "RC", schedules=100, seed=0)
    print(format_litmus_report([mp]))

    print(f"\n== Part 3: {app.upper()} on the recorded Tango executor ==\n")
    result = verify_app(app, models=ALL_MODELS, n_procs=4)
    print(result.format())
    print(
        "\nThe Tango host is SC-atomic, so all four models accept its "
        "logs; the relaxed outcomes above exist only in the model-aware "
        "engine."
    )


if __name__ == "__main__":
    main()
