"""Writing your own parallel workload against the simulated machine.

This is the downstream-user workflow: define a parallel program with the
structured assembler (here, a lock-protected parallel histogram with a
final barrier), lay out shared memory, run it on the simulated
multiprocessor, check the result, and study how each processor model
executes it.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import MultiprocessorConfig, TangoExecutor
from repro.asm import AsmBuilder
from repro.cpu import ProcessorConfig, simulate
from repro.experiments import format_breakdowns
from repro.mem import SegmentAllocator, SharedMemory

N_PROCS = 8
VALUES_PER_PROC = 400
N_BINS = 16


def build_histogram_workload(seed: int = 42):
    """Each processor classifies its block of values into shared bins."""
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 1000, size=N_PROCS * VALUES_PER_PROC)

    layout = SegmentAllocator()
    values_base = layout.alloc_words("values", len(values))
    bins_base = layout.alloc_words("bins", N_BINS)
    locks_base = layout.alloc_words("locks", N_BINS, align=16)
    bar_base = layout.alloc_words("barrier", 1)

    memory = SharedMemory()
    for i, v in enumerate(values):
        memory.write_word(values_base + 4 * i, int(v))

    programs = []
    for me in range(N_PROCS):
        b = AsmBuilder(f"hist.t{me}")
        r_vals = b.ireg("values")
        r_bins = b.ireg("bins")
        r_locks = b.ireg("locks")
        r_bar = b.ireg("bar")
        b.li(r_vals, values_base + 4 * me * VALUES_PER_PROC)
        b.li(r_bins, bins_base)
        b.li(r_locks, locks_base)
        b.li(r_bar, bar_base)

        i = b.ireg("i")
        with b.for_range(i, 0, VALUES_PER_PROC):
            with b.itemps(3) as (v, bin_idx, addr):
                b.muli(addr, i, 4)
                b.add(addr, addr, r_vals)
                b.lw(v, addr, 0)
                # bin = value * N_BINS / 1000
                b.muli(bin_idx, v, N_BINS)
                with b.itemps(1) as t:
                    b.li(t, 1000)
                    b.div(bin_idx, bin_idx, t)
                # Take the bin's lock and increment the shared counter.
                with b.itemps(2) as (lock_addr, c):
                    b.muli(lock_addr, bin_idx, 4)
                    b.add(lock_addr, lock_addr, r_locks)
                    b.lock(lock_addr)
                    b.muli(c, bin_idx, 4)
                    b.add(c, c, r_bins)
                    with b.itemps(1) as n:
                        b.lw(n, c, 0)
                        b.addi(n, n, 1)
                        b.sw(n, c, 0)
                    b.unlock(lock_addr)
        b.barrier(r_bar)
        b.halt()
        programs.append(b.build())

    expected = np.bincount(values * N_BINS // 1000, minlength=N_BINS)
    return programs, memory, bins_base, expected


def main() -> None:
    programs, memory, bins_base, expected = build_histogram_workload()
    print(f"Running a parallel histogram on {N_PROCS} processors...")

    result = TangoExecutor(
        programs,
        MultiprocessorConfig(n_cpus=N_PROCS, miss_penalty=50),
        memory=memory,
    ).run()

    got = [result.memory.read_word(bins_base + 4 * i)
           for i in range(N_BINS)]
    assert got == list(expected), (got, list(expected))
    print(f"Histogram verified: {got}")

    stats = result.stats.cpu(0)
    print(
        f"\nProcessor 0: {stats.busy_cycles} instructions, "
        f"{stats.locks} lock acquisitions, "
        f"{stats.acquire_wait_cycles} cycles of lock contention"
    )

    trace = result.trace(0)
    runs = [
        simulate(trace, ProcessorConfig(kind="base")),
        simulate(trace, ProcessorConfig(kind="ssbr", model="RC")),
        simulate(trace, ProcessorConfig(kind="ds", model="RC", window=64)),
    ]
    print()
    print(format_breakdowns(
        "Custom workload across processor models (percent of BASE):",
        runs, runs[0],
    ))


if __name__ == "__main__":
    main()
