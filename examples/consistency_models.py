"""Consistency models side by side (the paper's Figure 1, executable).

Part 1 prints the ordering restrictions each model imposes on a canonical
access sequence and the idealised overlapped completion time.

Part 2 runs the same application trace through the dynamically scheduled
processor under SC, PC, WO and RC, showing how the model — not the
hardware — decides how much memory latency can be hidden.

Run:  python examples/consistency_models.py [app]
"""

import sys

from repro import MultiprocessorConfig, TangoExecutor, build_app
from repro.cpu import ProcessorConfig, simulate
from repro.experiments import (
    format_breakdowns,
    format_figure1,
    run_figure1,
)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "mp3d"

    print(format_figure1(run_figure1()))

    print(f"\nRunning {app.upper()} on the simulated multiprocessor...")
    workload = build_app(app, preset="tiny")
    result = TangoExecutor(
        workload.programs, MultiprocessorConfig(), memory=workload.memory
    ).run()
    workload.verify(result.memory)
    trace = result.trace(0)

    runs = [simulate(trace, ProcessorConfig(kind="base"))]
    for model in ("SC", "PC", "WO", "RC"):
        runs.append(
            simulate(
                trace,
                ProcessorConfig(kind="ds", model=model, window=64),
            )
        )
    print()
    print(format_breakdowns(
        f"{app.upper()} on the dynamically scheduled processor "
        f"(window 64, percent of BASE):",
        runs, runs[0],
    ))
    print(
        "\nSC gains almost nothing from the out-of-order window; each "
        "relaxation exposes more of the overlap the window can exploit."
    )


if __name__ == "__main__":
    main()
